// Decision-trace journal: a structured JSONL record per joint-manager
// decision, written through a buffered, non-blocking sink so emitting a
// record never stalls the decision hot path.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
)

// Float is a float64 that marshals non-finite values as JSON null
// (standard JSON has no Inf/NaN; a +Inf timeout means "spin-down
// disabled" and is documented as null in the journal schema).
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// ObservationSummary condenses what the manager saw at one period
// boundary.
type ObservationSummary struct {
	LogLen         int   `json:"log_len"`
	CacheAccesses  int64 `json:"cache_accesses"`
	CoalesceFactor Float `json:"coalesce_factor"`
	CurrentBanks   int   `json:"current_banks"`
	PeriodStart    Float `json:"period_start_s"`
	PeriodEnd      Float `json:"period_end_s"`
}

// ParetoFitSummary is the winning candidate's idle-interval model.
type ParetoFitSummary struct {
	Alpha Float `json:"alpha"`
	Beta  Float `json:"beta"`
	OK    bool  `json:"ok"`
}

// CandidateSummary is one evaluated memory size in the journal. Reason
// is empty on the winner and names why every other candidate lost (see
// the rejection-reason vocabulary in DESIGN.md).
type CandidateSummary struct {
	Banks          int    `json:"banks"`
	DiskAccesses   int64  `json:"disk_accesses"`
	IdleCount      int    `json:"idle_count"`
	Utilization    Float  `json:"utilization"`
	TimeoutS       Float  `json:"timeout_s"` // null: spin-down disabled
	TimeoutFloorS  Float  `json:"timeout_floor_s"`
	FloorClamped   bool   `json:"floor_clamped,omitempty"`
	TotalPowerW    Float  `json:"total_power_w"`
	DiskPMPowerW   Float  `json:"disk_pm_power_w"`
	DiskDynPowerW  Float  `json:"disk_dyn_power_w"`
	MemPowerW      Float  `json:"mem_power_w"`
	PredictedWaitS Float  `json:"predicted_wait_s"`
	Feasible       bool   `json:"feasible"`
	Reason         string `json:"reason,omitempty"`
}

// DecisionRecord is one JSONL line of the decision-trace journal. Seq
// is assigned by the sink in write order.
type DecisionRecord struct {
	Seq            int64              `json:"seq"`
	Observation    ObservationSummary `json:"obs"`
	Fit            ParetoFitSummary   `json:"fit"`
	TimeoutFloorS  Float              `json:"timeout_floor_s"`
	Chosen         CandidateSummary   `json:"chosen"`
	Evaluated      int                `json:"evaluated"`
	HysteresisHold bool               `json:"hysteresis_hold,omitempty"`
	// Fallback marks a degraded decision: the search winner was
	// distrusted (degenerate fit or non-finite pricing) and the manager
	// held its previous configuration. Chosen carries the distrusted
	// winner; FallbackBanks/FallbackTimeoutS carry what was applied.
	Fallback         bool               `json:"fallback,omitempty"`
	FallbackBanks    int                `json:"fallback_banks,omitempty"`
	FallbackTimeoutS Float              `json:"fallback_timeout_s,omitempty"`
	RunnersUp        []CandidateSummary `json:"runners_up,omitempty"`
}

// DefaultSinkDepth is the channel depth a sink is created with when the
// caller passes 0.
const DefaultSinkDepth = 256

// DecisionSink journals decision records as JSON lines. Emit never
// blocks: records queue on a buffered channel drained by one writer
// goroutine, and records arriving at a full queue are counted as
// dropped instead of stalling the caller. A nil sink is a valid
// disabled sink — Emit and Close are no-ops.
type DecisionSink struct {
	ch      chan DecisionRecord
	done    chan struct{}
	w       *bufio.Writer
	closer  io.Closer // optional underlying file
	seq     int64     // writer-goroutine only
	dropped atomic.Int64
	werr    error // first write error; written by drain, read after done
	once    sync.Once
	mu      sync.RWMutex // serialises Emit sends against the channel close
	closed  atomic.Bool
}

// NewDecisionSink starts a sink writing JSON lines to w. depth ≤ 0 uses
// DefaultSinkDepth. Close must be called to flush.
func NewDecisionSink(w io.Writer, depth int) *DecisionSink {
	if depth <= 0 {
		depth = DefaultSinkDepth
	}
	s := &DecisionSink{
		ch:   make(chan DecisionRecord, depth),
		done: make(chan struct{}),
		w:    bufio.NewWriter(w),
	}
	go s.drain()
	return s
}

// NewFileSink creates path (truncating) and starts a sink writing to
// it; Close closes the file.
func NewFileSink(path string, depth int) (*DecisionSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: decision trace: %w", err)
	}
	s := NewDecisionSink(f, depth)
	s.closer = f
	return s, nil
}

// Enabled reports whether records will be journalled. It is the guard
// instrumented code uses before building a record.
func (s *DecisionSink) Enabled() bool { return s != nil && !s.closed.Load() }

// Emit queues one record, dropping it (and counting the drop) if the
// queue is full or the sink is closed. No-op on a nil receiver.
func (s *DecisionSink) Emit(r DecisionRecord) {
	if s == nil {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		s.dropped.Add(1)
		return
	}
	select {
	case s.ch <- r:
	default:
		s.dropped.Add(1)
	}
}

// Dropped returns how many records were discarded because the queue was
// full; zero on a nil receiver.
func (s *DecisionSink) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close drains queued records, flushes the writer, closes any
// underlying file, and returns the first error encountered (queueing or
// writing). Safe to call more than once and on a nil receiver.
func (s *DecisionSink) Close() error {
	if s == nil {
		return nil
	}
	s.once.Do(func() {
		s.mu.Lock()
		s.closed.Store(true)
		close(s.ch)
		s.mu.Unlock()
		<-s.done
	})
	return s.werr
}

func (s *DecisionSink) drain() {
	defer close(s.done)
	for r := range s.ch {
		s.seq++
		r.Seq = s.seq
		b, err := json.Marshal(r)
		if err == nil {
			b = append(b, '\n')
			_, err = s.w.Write(b)
		}
		if err != nil && s.werr == nil {
			s.werr = err
		}
	}
	if err := s.w.Flush(); err != nil && s.werr == nil {
		s.werr = err
	}
	if s.closer != nil {
		if err := s.closer.Close(); err != nil && s.werr == nil {
			s.werr = err
		}
	}
}
