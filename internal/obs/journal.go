// Decision-trace journal: a structured JSONL record per joint-manager
// decision, written through a buffered, non-blocking sink so emitting a
// record never stalls the decision hot path.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Float is a float64 that marshals non-finite values as JSON null
// (standard JSON has no Inf/NaN; a +Inf timeout means "spin-down
// disabled" and is documented as null in the journal schema).
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler: null decodes as +Inf,
// the value every Float field in the schema (timeouts, period bounds)
// means by it.
func (f *Float) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = Float(math.Inf(1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// ObservationSummary condenses what the manager saw at one period
// boundary.
type ObservationSummary struct {
	LogLen         int   `json:"log_len"`
	CacheAccesses  int64 `json:"cache_accesses"`
	CoalesceFactor Float `json:"coalesce_factor"`
	CurrentBanks   int   `json:"current_banks"`
	PeriodStart    Float `json:"period_start_s"`
	PeriodEnd      Float `json:"period_end_s"`
}

// ParetoFitSummary is the winning candidate's idle-interval model.
type ParetoFitSummary struct {
	Alpha Float `json:"alpha"`
	Beta  Float `json:"beta"`
	OK    bool  `json:"ok"`
}

// CandidateSummary is one evaluated memory size in the journal. Reason
// is empty on the winner and names why every other candidate lost (see
// the rejection-reason vocabulary in DESIGN.md).
type CandidateSummary struct {
	Banks          int   `json:"banks"`
	DiskAccesses   int64 `json:"disk_accesses"`
	IdleCount      int   `json:"idle_count"`
	Utilization    Float `json:"utilization"`
	TimeoutS       Float `json:"timeout_s"` // null: spin-down disabled
	TimeoutFloorS  Float `json:"timeout_floor_s"`
	FloorClamped   bool  `json:"floor_clamped,omitempty"`
	TotalPowerW    Float `json:"total_power_w"`
	DiskPMPowerW   Float `json:"disk_pm_power_w"`
	DiskDynPowerW  Float `json:"disk_dyn_power_w"`
	MemPowerW      Float `json:"mem_power_w"`
	PredictedWaitS Float `json:"predicted_wait_s"`
	Feasible       bool  `json:"feasible"`
	// OverBudget marks a candidate priced above the fleet coordinator's
	// per-shard power budget; omitted (never true) on unbudgeted runs so
	// existing golden traces stay byte-identical.
	OverBudget bool `json:"over_budget,omitempty"`
	// SpeedLevel is the DRPM ladder index the candidate was priced at.
	// Deliberately NOT omitempty: the column is present-but-0 on
	// single-speed runs so trace consumers see a stable schema (the
	// golden traces were regenerated when it landed).
	SpeedLevel int    `json:"speed_level"`
	Reason     string `json:"reason,omitempty"`
}

// DecisionRecord is one JSONL line of the decision-trace journal. Seq
// is assigned by the sink in write order.
type DecisionRecord struct {
	Seq            int64              `json:"seq"`
	Observation    ObservationSummary `json:"obs"`
	Fit            ParetoFitSummary   `json:"fit"`
	TimeoutFloorS  Float              `json:"timeout_floor_s"`
	Chosen         CandidateSummary   `json:"chosen"`
	Evaluated      int                `json:"evaluated"`
	HysteresisHold bool               `json:"hysteresis_hold,omitempty"`
	// Fallback marks a degraded decision: the search winner was
	// distrusted (degenerate fit or non-finite pricing) and the manager
	// held its previous configuration. Chosen carries the distrusted
	// winner; FallbackBanks/FallbackTimeoutS carry what was applied.
	Fallback         bool               `json:"fallback,omitempty"`
	FallbackBanks    int                `json:"fallback_banks,omitempty"`
	FallbackTimeoutS Float              `json:"fallback_timeout_s,omitempty"`
	RunnersUp        []CandidateSummary `json:"runners_up,omitempty"`
}

// DefaultSinkDepth is the channel depth a sink is created with when the
// caller passes 0.
const DefaultSinkDepth = 256

// DefaultFlushInterval is how often a file-backed sink flushes its write
// buffer when records are trickling in. Batch runs flush on Close anyway;
// the interval exists for long-running daemons, where a record must not
// sit in the buffer for hours because the next one is a period away.
const DefaultFlushInterval = time.Second

// DecisionSink journals decision records as JSON lines. Emit never
// blocks: records queue on a buffered channel drained by one writer
// goroutine, and records arriving at a full queue are counted as
// dropped instead of stalling the caller. A nil sink is a valid
// disabled sink — Emit and Close are no-ops.
type DecisionSink struct {
	ch      chan DecisionRecord
	done    chan struct{}
	w       *bufio.Writer
	closer  io.Closer // optional underlying file
	seq     int64     // writer-goroutine only
	dropped atomic.Int64
	werr    error // first write error; written by drain, read after done
	once    sync.Once
	mu      sync.RWMutex // serialises Emit sends against the channel close
	closed  atomic.Bool

	// flushEvery > 0 makes the drain goroutine flush the write buffer on
	// that interval while idle. It is fixed at construction and only the
	// drain goroutine acts on it, so no synchronisation is needed.
	flushEvery time.Duration
}

// NewDecisionSink starts a sink writing JSON lines to w. depth ≤ 0 uses
// DefaultSinkDepth. Close must be called to flush. The sink flushes only
// on Close; use NewFlushingSink when records must hit the writer while
// the sink stays open.
func NewDecisionSink(w io.Writer, depth int) *DecisionSink {
	return NewFlushingSink(w, depth, 0)
}

// NewFlushingSink is NewDecisionSink with a periodic buffer flush every
// flushEvery (0 disables, restoring flush-on-Close-only behavior).
func NewFlushingSink(w io.Writer, depth int, flushEvery time.Duration) *DecisionSink {
	if depth <= 0 {
		depth = DefaultSinkDepth
	}
	s := &DecisionSink{
		ch:         make(chan DecisionRecord, depth),
		done:       make(chan struct{}),
		w:          bufio.NewWriter(w),
		flushEvery: flushEvery,
	}
	go s.drain()
	return s
}

// NewFileSink creates path (truncating) and starts a sink writing to
// it; Close closes the file. File sinks flush periodically
// (DefaultFlushInterval) so a long-running process's journal stays
// near-current on disk.
func NewFileSink(path string, depth int) (*DecisionSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: decision trace: %w", err)
	}
	s := NewFlushingSink(f, depth, DefaultFlushInterval)
	s.closer = f
	return s, nil
}

// Enabled reports whether records will be journalled. It is the guard
// instrumented code uses before building a record.
func (s *DecisionSink) Enabled() bool { return s != nil && !s.closed.Load() }

// Emit queues one record, dropping it (and counting the drop) if the
// queue is full or the sink is closed. No-op on a nil receiver.
func (s *DecisionSink) Emit(r DecisionRecord) {
	if s == nil {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		s.dropped.Add(1)
		return
	}
	select {
	case s.ch <- r:
	default:
		s.dropped.Add(1)
	}
}

// Dropped returns how many records were discarded because the queue was
// full; zero on a nil receiver.
func (s *DecisionSink) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close drains queued records, flushes the writer, closes any
// underlying file, and returns the first error encountered (queueing or
// writing). Safe to call more than once and on a nil receiver.
func (s *DecisionSink) Close() error {
	if s == nil {
		return nil
	}
	s.once.Do(func() {
		s.mu.Lock()
		s.closed.Store(true)
		close(s.ch)
		s.mu.Unlock()
		<-s.done
	})
	return s.werr
}

func (s *DecisionSink) drain() {
	defer close(s.done)
	var tickC <-chan time.Time
	if s.flushEvery > 0 {
		tick := time.NewTicker(s.flushEvery)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case r, ok := <-s.ch:
			if !ok {
				s.finish()
				return
			}
			s.writeRecord(r)
		case <-tickC:
			s.setErr(s.w.Flush())
		}
	}
}

// writeRecord journals one record. The buffer is pre-flushed when the
// encoded line would not fit in the remaining space, so every line
// reaches the underlying writer in one Write — a process killed at any
// instant leaves a journal whose last record is complete, never split
// mid-line across two flushes.
func (s *DecisionSink) writeRecord(r DecisionRecord) {
	s.seq++
	r.Seq = s.seq
	b, err := json.Marshal(r)
	if err != nil {
		s.setErr(err)
		return
	}
	b = append(b, '\n')
	if len(b) > s.w.Available() && s.w.Buffered() > 0 {
		s.setErr(s.w.Flush())
	}
	_, err = s.w.Write(b)
	s.setErr(err)
}

func (s *DecisionSink) finish() {
	s.setErr(s.w.Flush())
	if s.closer != nil {
		s.setErr(s.closer.Close())
	}
}

// setErr records the first error seen by the drain goroutine.
func (s *DecisionSink) setErr(err error) {
	if err != nil && s.werr == nil {
		s.werr = err
	}
}
