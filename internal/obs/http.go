// Runtime exposure: expvar-backed snapshots and an optional HTTP
// endpoint serving the registry in the Prometheus text format
// (/metrics) alongside the standard expvar JSON dump (/debug/vars).
package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
)

// Publish registers the registry under name in the process-global
// expvar namespace as a function variable that snapshots on read, so
// `/debug/vars` (and anything else walking expvar) sees live values.
// Publishing the same name twice keeps the first registration (expvar
// itself panics on duplicates; re-publishing across runs in one process
// is normal for tests).
func Publish(name string, r *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		snap := r.Snapshot()
		out := make(map[string]any, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
		for _, c := range snap.Counters {
			out[c.Name] = c.Value
		}
		for _, g := range snap.Gauges {
			out[g.Name] = g.Value
		}
		for _, h := range snap.Histograms {
			out[h.Name] = map[string]any{
				"count": h.Count, "sum": h.Sum,
				"bounds": h.Bounds, "counts": h.Counts,
			}
		}
		return out
	}))
}

// metricName maps a registry name like "core.decide.calls" to the
// Prometheus-style "jointpm_core_decide_calls".
func metricName(name string) string {
	return "jointpm_" + strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(name)
}

// WriteText renders the registry in the Prometheus text exposition
// format: counters and gauges as bare samples, histograms as cumulative
// _bucket{le="..."} series with _sum and _count.
func WriteText(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	for _, c := range snap.Counters {
		if _, err := fmt.Fprintf(w, "%s %d\n", metricName(c.Name), c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		if _, err := fmt.Fprintf(w, "%s %g\n", metricName(g.Name), g.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		name := metricName(h.Name)
		var cum int64
		for i, cnt := range h.Counts {
			cum += cnt
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum, name, h.Count); err != nil {
			return err
		}
		// Server-side quantile estimates for scrapers without
		// histogram_quantile (jointpmctl, curl). +Inf and NaN are legal
		// sample values in the text format.
		if _, err := fmt.Fprintf(w, "%s_p50 %g\n%s_p99 %g\n",
			name, h.Quantile(0.50), name, h.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry as /metrics
// text.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteText(w, r)
	})
}

// Serve publishes the registry under "jointpm", binds addr, and serves
// /metrics (text format) and /debug/vars (expvar JSON) until the
// returned server is shut down. It returns the bound address so callers
// passing ":0" can discover the port.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	return ServeWith(addr, r, nil)
}

// ServeWith is Serve with a hook to mount extra handlers (debug
// endpoints like /debug/periods) on the same mux before it starts
// serving. register may be nil.
func ServeWith(addr string, r *Registry, register func(*http.ServeMux)) (*http.Server, net.Addr, error) {
	Publish("jointpm", r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	if register != nil {
		register(mux)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
