package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilSafety exercises every instrument through nil receivers: the
// disabled configuration must be a silent no-op, not a crash.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 2})
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments leaked values: %d %g %d", c.Value(), g.Value(), h.Count())
	}
	if b, n := h.Buckets(); b != nil || n != nil {
		t.Fatalf("nil histogram returned buckets")
	}
	if r.CounterValue("x") != 0 {
		t.Fatalf("nil registry read non-zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty")
	}
	var s *DecisionSink
	s.Emit(DecisionRecord{})
	if s.Enabled() || s.Dropped() != 0 {
		t.Fatalf("nil sink claims to be enabled")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil sink Close: %v", err)
	}
}

// TestRegistryIdentity checks that the same name resolves to the same
// instrument, so hot paths can cache the pointer.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatalf("counter identity broken")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatalf("gauge identity broken")
	}
	if r.Histogram("c", []float64{1}) != r.Histogram("c", []float64{5}) {
		t.Fatalf("histogram identity broken")
	}
	r.Counter("a").Add(3)
	if got := r.CounterValue("a"); got != 3 {
		t.Fatalf("CounterValue = %d, want 3", got)
	}
}

// TestConcurrentInstruments hammers one counter/gauge/histogram from
// many goroutines; run under -race in CI.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("level")
	h := r.Histogram("lat", []float64{0.5, 1, 2})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) * 0.75)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %g, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	_, counts := h.Buckets()
	var sum int64
	for _, n := range counts {
		sum += n
	}
	if sum != workers*per {
		t.Fatalf("bucket counts sum to %d, want %d", sum, workers*per)
	}
}

// TestHistogramBuckets pins the bucket-assignment rule: first bound ≥ v,
// overflow beyond the last bound.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.5, 10, 11} {
		h.Observe(v)
	}
	_, counts := h.Buckets()
	want := []int64{2, 2, 1} // ≤1: {0.5,1}; ≤10: {1.5,10}; +Inf: {11}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Sum() != 0.5+1+1.5+10+11 {
		t.Fatalf("sum = %g", h.Sum())
	}
}

// TestWriteText checks the exposition format end to end, including the
// cumulative histogram series.
func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.decide.calls").Add(7)
	r.Gauge("core.decide.banks").Set(42)
	h := r.Histogram("sim.period.utilization", []float64{0.5})
	h.Observe(0.25)
	h.Observe(0.75)
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"jointpm_core_decide_calls 7\n",
		"jointpm_core_decide_banks 42\n",
		`jointpm_sim_period_utilization_bucket{le="0.5"} 1` + "\n",
		`jointpm_sim_period_utilization_bucket{le="+Inf"} 2` + "\n",
		"jointpm_sim_period_utilization_sum 1\n",
		"jointpm_sim_period_utilization_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}
