package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety exercises every instrument through nil receivers: the
// disabled configuration must be a silent no-op, not a crash.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 2})
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments leaked values: %d %g %d", c.Value(), g.Value(), h.Count())
	}
	if b, n := h.Buckets(); b != nil || n != nil {
		t.Fatalf("nil histogram returned buckets")
	}
	if r.CounterValue("x") != 0 {
		t.Fatalf("nil registry read non-zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty")
	}
	var s *DecisionSink
	s.Emit(DecisionRecord{})
	if s.Enabled() || s.Dropped() != 0 {
		t.Fatalf("nil sink claims to be enabled")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil sink Close: %v", err)
	}
}

// TestRegistryIdentity checks that the same name resolves to the same
// instrument, so hot paths can cache the pointer.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatalf("counter identity broken")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatalf("gauge identity broken")
	}
	if r.Histogram("c", []float64{1}) != r.Histogram("c", []float64{5}) {
		t.Fatalf("histogram identity broken")
	}
	r.Counter("a").Add(3)
	if got := r.CounterValue("a"); got != 3 {
		t.Fatalf("CounterValue = %d, want 3", got)
	}
}

// TestConcurrentInstruments hammers one counter/gauge/histogram from
// many goroutines; run under -race in CI.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("level")
	h := r.Histogram("lat", []float64{0.5, 1, 2})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) * 0.75)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %g, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	_, counts := h.Buckets()
	var sum int64
	for _, n := range counts {
		sum += n
	}
	if sum != workers*per {
		t.Fatalf("bucket counts sum to %d, want %d", sum, workers*per)
	}
}

// TestHistogramBuckets pins the bucket-assignment rule: first bound ≥ v,
// overflow beyond the last bound.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.5, 10, 11} {
		h.Observe(v)
	}
	_, counts := h.Buckets()
	want := []int64{2, 2, 1} // ≤1: {0.5,1}; ≤10: {1.5,10}; +Inf: {11}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Sum() != 0.5+1+1.5+10+11 {
		t.Fatalf("sum = %g", h.Sum())
	}
}

// TestWriteText checks the exposition format end to end, including the
// cumulative histogram series.
func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.decide.calls").Add(7)
	r.Gauge("core.decide.banks").Set(42)
	h := r.Histogram("sim.period.utilization", []float64{0.5})
	h.Observe(0.25)
	h.Observe(0.75)
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"jointpm_core_decide_calls 7\n",
		"jointpm_core_decide_banks 42\n",
		`jointpm_sim_period_utilization_bucket{le="0.5"} 1` + "\n",
		`jointpm_sim_period_utilization_bucket{le="+Inf"} 2` + "\n",
		"jointpm_sim_period_utilization_sum 1\n",
		"jointpm_sim_period_utilization_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramQuantile pins the interpolation rule: linear within the
// containing bucket, lower bound 0 for the first bucket, +Inf for
// quantiles landing in the overflow bucket, NaN when empty.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
	// 10 samples in (1,2], 10 in (2,4].
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
		h.Observe(3)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %g, want 2 (rank 10 at bucket (1,2] upper edge)", got)
	}
	if got := h.Quantile(0.75); got != 3 {
		t.Errorf("p75 = %g, want 3 (midpoint of (2,4])", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %g, want 1 (lower edge of first occupied bucket)", got)
	}
	h.Observe(100) // overflow bucket
	if got := h.Quantile(0.999); !math.IsInf(got, 1) {
		t.Errorf("p99.9 = %g, want +Inf (overflow bucket)", got)
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram quantile not NaN")
	}

	// 21 samples now: rank 15.75 interpolates inside (2,4].
	snap := r.Snapshot()
	if got := snap.Histograms[0].Quantile(0.75); got != 3.15 {
		t.Errorf("snapshot p75 = %g, want 3.15", got)
	}
}

// TestWriteTextHandScrape compares a one-histogram registry against a
// hand-written Prometheus text scrape, byte for byte: cumulative
// le-labelled buckets, the +Inf bucket, _sum/_count, and the
// server-side p50/p99 estimates.
func TestWriteTextHandScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("serve.decide_wall_s", []float64{0.001, 0.01, 0.1})
	// 3 in (0, 0.001], 1 in (0.001, 0.01], 1 overflow.
	h.Observe(0.0005)
	h.Observe(0.001)
	h.Observe(0.0002)
	h.Observe(0.005)
	h.Observe(0.5)
	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	want := `jointpm_serve_decide_wall_s_bucket{le="0.001"} 3
jointpm_serve_decide_wall_s_bucket{le="0.01"} 4
jointpm_serve_decide_wall_s_bucket{le="0.1"} 4
jointpm_serve_decide_wall_s_bucket{le="+Inf"} 5
jointpm_serve_decide_wall_s_sum 0.5067
jointpm_serve_decide_wall_s_count 5
jointpm_serve_decide_wall_s_p50 0.0008333333333333334
jointpm_serve_decide_wall_s_p99 +Inf
`
	if got := sb.String(); got != want {
		t.Errorf("scrape mismatch:\ngot:\n%swant:\n%s", got, want)
	}
}
