// Package obs is the observability layer: a zero-dependency metrics
// registry (atomic counters, float gauges, fixed-bucket histograms), a
// structured decision-trace journal with a buffered non-blocking sink,
// and runtime exposure through expvar and an optional HTTP endpoint
// (text-format /metrics plus the standard /debug/vars).
//
// Every type in this package is nil-safe: methods on a nil *Registry,
// *Counter, *Gauge, *Histogram, or *DecisionSink are no-ops (reads
// return zero values). Instrumented code therefore carries plain
// pointers it never has to guard, and a disabled configuration costs one
// nil check per event on the hot path — no branches on configuration
// structs, no allocations.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n should be non-negative; Counter does not enforce it).
// No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can move in both directions, safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d with a CAS loop. No-op on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value; zero on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observation i lands in the
// first bucket whose upper bound is ≥ v, or the implicit +Inf overflow
// bucket. Bounds are set at registration and never change, so Observe
// is lock-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds
	counts []atomic.Int64
	sumB   atomic.Uint64 // float64 bits of the running sum
	n      atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumB.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumB.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations; zero on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumB.Load())
}

// Buckets returns the bucket upper bounds and their (non-cumulative)
// counts; the final count is the +Inf overflow bucket. Nil receiver
// returns nils.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the containing bucket, the standard
// fixed-bucket estimate Prometheus's histogram_quantile computes
// server-side. The first bucket interpolates from a lower bound of 0;
// a quantile landing in the +Inf overflow bucket returns +Inf. Zero
// observations (or a nil receiver) return NaN.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	bounds, counts := h.Buckets()
	return bucketQuantile(bounds, counts, q)
}

// bucketQuantile is the shared fixed-bucket quantile estimate behind
// Histogram.Quantile and HistogramSnapshot.Quantile. counts are
// non-cumulative with the final entry the +Inf overflow bucket.
func bucketQuantile(bounds []float64, counts []int64, q float64) float64 {
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum float64
	for i, c := range counts {
		cnt := float64(c)
		if cum+cnt < rank || cnt == 0 {
			cum += cnt
			continue
		}
		if i >= len(bounds) {
			return math.Inf(1)
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		return lo + (bounds[i]-lo)*(rank-cum)/cnt
	}
	return math.Inf(1)
}

// Registry names and holds metrics. Registration (Counter, Gauge,
// Histogram) takes a mutex and returns the same instance for the same
// name, so instruments can be resolved once at construction time and
// used lock-free afterwards. A nil *Registry hands out nil instruments,
// which are themselves no-ops — the disabled configuration needs no
// special casing anywhere.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Nil receiver returns nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = new(Counter)
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil receiver returns nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (later calls keep the
// original bounds). Nil receiver returns nil.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValue reads a counter by name without creating it; zero when
// absent or on a nil receiver. Intended for tests and snapshots.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counts[name]
	r.mu.Unlock()
	return c.Value()
}

// HistogramSnapshot is one histogram's state inside a Snapshot.
type HistogramSnapshot struct {
	Name   string
	Bounds []float64 // upper bounds; the final count bucket is +Inf
	Counts []int64
	Sum    float64
	Count  int64
}

// Quantile estimates the q-quantile from the snapshot's buckets; NaN
// when the histogram recorded nothing.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	return bucketQuantile(h.Bounds, h.Counts, q)
}

// Snapshot is a point-in-time, name-sorted copy of every metric — the
// single source both the expvar map and the /metrics text format render
// from.
type Snapshot struct {
	Counters   []NamedInt
	Gauges     []NamedFloat
	Histograms []HistogramSnapshot
}

// NamedInt is a name/value pair for counters.
type NamedInt struct {
	Name  string
	Value int64
}

// NamedFloat is a name/value pair for gauges.
type NamedFloat struct {
	Name  string
	Value float64
}

// Snapshot copies the registry's current state, sorted by name. Nil
// receiver returns the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	for name, c := range r.counts {
		s.Counters = append(s.Counters, NamedInt{name, c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedFloat{name, g.Value()})
	}
	for name, h := range r.hists {
		bounds, counts := h.Buckets()
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name: name, Bounds: bounds, Counts: counts, Sum: h.Sum(), Count: h.Count(),
		})
	}
	r.mu.Unlock()
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
