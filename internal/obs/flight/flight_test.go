package flight

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"jointpm/internal/obs"
)

func rec(period int64, decideNs int64) PeriodRecord {
	return PeriodRecord{
		Disk:     "d0",
		Period:   period,
		DecideNs: decideNs,
		Refs:     10,
		IngestNs: 1000,
		Energy:   Ledger{MemNapJ: 1, DiskActiveJ: 2},
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(rec(1, 1))
	r.AmendCheckpoint("d0", 1, 5)
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	if got := r.Last(4); got != nil {
		t.Errorf("nil Last = %v, want nil", got)
	}
	if r.Total() != 0 || r.Depth() != 0 || r.DecideNsQuantile(0.99) != 0 {
		t.Error("nil recorder reads non-zero")
	}
	if (r.Sum() != Ledger{}) {
		t.Error("nil Sum non-zero")
	}
	var buf bytes.Buffer
	if err := r.WriteDump(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteDump wrote %q, err %v", buf.String(), err)
	}
}

func TestRingWraparound(t *testing.T) {
	r := New(4)
	for p := int64(1); p <= 10; p++ {
		r.Record(rec(p, p*100))
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	got := r.Last(0)
	if len(got) != 4 {
		t.Fatalf("retained %d records, want 4", len(got))
	}
	for i, want := range []int64{7, 8, 9, 10} {
		if got[i].Period != want {
			t.Errorf("Last(0)[%d].Period = %d, want %d (oldest first)", i, got[i].Period, want)
		}
	}
	if got := r.Last(2); len(got) != 2 || got[0].Period != 9 || got[1].Period != 10 {
		t.Errorf("Last(2) periods = %v, want [9 10]", got)
	}
	if got := r.Last(100); len(got) != 4 {
		t.Errorf("Last(100) returned %d records, want 4", len(got))
	}
	// Cumulative ledger spans all 10 records, not just the retained 4.
	if s := r.Sum(); s.MemNapJ != 10 || s.DiskActiveJ != 20 {
		t.Errorf("Sum = %+v, want MemNapJ=10 DiskActiveJ=20", s)
	}
}

func TestAmendCheckpoint(t *testing.T) {
	r := New(4)
	r.Record(rec(1, 100))
	r.Record(rec(2, 100))
	r.AmendCheckpoint("d0", 2, 777)
	r.AmendCheckpoint("d0", 99, 888) // rotated out / never existed: no-op
	recs := r.Last(0)
	if recs[0].CheckpointNs != 0 || recs[1].CheckpointNs != 777 {
		t.Errorf("CheckpointNs = [%d %d], want [0 777]", recs[0].CheckpointNs, recs[1].CheckpointNs)
	}
}

func TestLedgerArithmetic(t *testing.T) {
	l := Ledger{MemActiveJ: 1, MemNapJ: 2, MemTransitionJ: 3, DiskActiveJ: 4, DiskStandbyJ: 5, DiskSpinJ: 6, DelayS: 100}
	if l.MemJ() != 6 || l.DiskJ() != 15 || l.TotalJ() != 21 {
		t.Errorf("MemJ=%g DiskJ=%g TotalJ=%g, want 6 15 21 (DelayS excluded)", l.MemJ(), l.DiskJ(), l.TotalJ())
	}
	var sum Ledger
	sum.Add(l)
	sum.Add(l)
	if sum.TotalJ() != 42 || sum.DelayS != 200 {
		t.Errorf("Add: TotalJ=%g DelayS=%g, want 42 200", sum.TotalJ(), sum.DelayS)
	}
}

func TestPeriodRecordJSONInfTimeout(t *testing.T) {
	p := rec(3, 100)
	p.TimeoutS = obs.Float(math.Inf(1))
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal with +Inf timeout: %v", err)
	}
	if !strings.Contains(string(b), `"timeout_s":null`) {
		t.Errorf("+Inf timeout not marshaled as null: %s", b)
	}
	if !strings.Contains(string(b), `"mem_nap_j":1`) {
		t.Errorf("ledger missing from record JSON: %s", b)
	}
}

func TestIngestNsPerRef(t *testing.T) {
	p := rec(1, 0) // 10 refs, 1000 ns
	if got := p.IngestNsPerRef(); got != 100 {
		t.Errorf("IngestNsPerRef = %g, want 100", got)
	}
	p.Refs = 0
	if got := p.IngestNsPerRef(); got != 0 {
		t.Errorf("IngestNsPerRef with 0 refs = %g, want 0", got)
	}
}

func TestDecideNsQuantile(t *testing.T) {
	r := New(100)
	for p := int64(1); p <= 100; p++ {
		r.Record(rec(p, p)) // DecideNs 1..100
	}
	if got := r.DecideNsQuantile(0.50); got != 50 {
		t.Errorf("p50 = %d, want 50", got)
	}
	if got := r.DecideNsQuantile(0.99); got != 99 {
		t.Errorf("p99 = %d, want 99", got)
	}
	if got := r.DecideNsQuantile(1.0); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	if got := r.DecideNsQuantile(0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
}

func TestWriteDump(t *testing.T) {
	r := New(4)
	r.Record(rec(1, 100))
	r.Record(rec(2, 200))
	var buf bytes.Buffer
	if err := r.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		var p PeriodRecord
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if p.Period != int64(i+1) {
			t.Errorf("line %d period = %d, want %d (oldest first)", i, p.Period, i+1)
		}
	}
}

// Concurrent writers, readers, quantiles, and dumps; run under -race in
// CI's daemon-layer job.
func TestRecorderConcurrency(t *testing.T) {
	r := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := int64(0); p < 200; p++ {
				r.Record(rec(int64(w)*1000+p, p))
				r.AmendCheckpoint("d0", int64(w)*1000+p, 1)
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Last(8)
				r.DecideNsQuantile(0.99)
				r.Sum()
				_ = r.WriteDump(&bytes.Buffer{})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Errorf("Total = %d, want 800", r.Total())
	}
	if got := len(r.Last(0)); got != 16 {
		t.Errorf("retained %d, want 16", got)
	}
}
