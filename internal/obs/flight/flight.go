// Package flight is the per-shard flight recorder: a fixed-size ring
// buffer of per-period lifecycle records (span timings plus an
// energy-attribution ledger) kept in memory by a live daemon and
// queryable over /debug/periods, jointpmctl, or a SIGQUIT dump.
//
// Like the rest of the obs layer every type is nil-safe: methods on a
// nil *Recorder are no-ops (reads return zero values), so instrumented
// code carries a plain pointer it never guards and the disabled
// configuration costs one nil check per period boundary — nothing on
// the per-request path.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"jointpm/internal/obs"
)

// Ledger splits one period's energy between the two managed subsystems.
// Priced ledgers (from the manager's candidate arithmetic) account
// energy relative to the disk's standby floor, so DiskStandbyJ is zero
// there; measured ledgers (from the simulator's energy integrals) fill
// every component. DelayS is the delayed-request latency cost in
// seconds — a performance currency, deliberately excluded from TotalJ.
type Ledger struct {
	MemActiveJ     float64 `json:"mem_active_j"`
	MemNapJ        float64 `json:"mem_nap_j"`
	MemTransitionJ float64 `json:"mem_transition_j"`
	DiskActiveJ    float64 `json:"disk_active_j"`
	DiskStandbyJ   float64 `json:"disk_standby_j"`
	DiskSpinJ      float64 `json:"disk_spin_j"`
	DelayS         float64 `json:"delay_s"`
}

// MemJ is the memory subsystem's share.
func (l Ledger) MemJ() float64 {
	return l.MemActiveJ + l.MemNapJ + l.MemTransitionJ
}

// DiskJ is the disk subsystem's share.
func (l Ledger) DiskJ() float64 {
	return l.DiskActiveJ + l.DiskStandbyJ + l.DiskSpinJ
}

// TotalJ is the period's total attributed energy (excludes DelayS,
// which is seconds, not joules).
func (l Ledger) TotalJ() float64 {
	return l.MemJ() + l.DiskJ()
}

// Add accumulates o into l component-wise.
func (l *Ledger) Add(o Ledger) {
	l.MemActiveJ += o.MemActiveJ
	l.MemNapJ += o.MemNapJ
	l.MemTransitionJ += o.MemTransitionJ
	l.DiskActiveJ += o.DiskActiveJ
	l.DiskStandbyJ += o.DiskStandbyJ
	l.DiskSpinJ += o.DiskSpinJ
	l.DelayS += o.DelayS
}

// PeriodRecord is one period's lifecycle: what the shard ingested, how
// long each stage took, what was decided, and where the energy went.
// Span timings are wall-clock nanoseconds; stream times are seconds.
// TimeoutS marshals +Inf (spin-down disabled) as JSON null, matching
// the decision-journal convention.
type PeriodRecord struct {
	Disk         string    `json:"disk,omitempty"`
	Period       int64     `json:"period"`
	Mode         string    `json:"mode,omitempty"` // "incremental" or "batch"
	StartS       obs.Float `json:"start_s"`
	EndS         obs.Float `json:"end_s"`
	Refs         int64     `json:"refs"`
	IngestNs     int64     `json:"ingest_ns"`     // summed ingest span over the period
	DecideNs     int64     `json:"decide_ns"`     // Decide wall time at the boundary
	EmitNs       int64     `json:"emit_ns"`       // decision emit (journal + callback)
	CheckpointNs int64     `json:"checkpoint_ns"` // 0 when no checkpoint followed
	Banks        int       `json:"banks"`
	TimeoutS     obs.Float `json:"timeout_s"` // null: spin-down disabled
	Fallback     bool      `json:"fallback,omitempty"`
	Warmup       bool      `json:"warmup,omitempty"`
	Energy       Ledger    `json:"energy"`

	// Fleet power-cap accounting, all zero (and omitted from JSON) when
	// no coordinator is attached, so uncapped dumps stay byte-identical.
	// PowerW is the decision's priced total power; BudgetW the shard's
	// budget when the period closed; OverBudget marks the graceful
	// fallback where no candidate fit the budget.
	PowerW     float64 `json:"power_w,omitempty"`
	BudgetW    float64 `json:"budget_w,omitempty"`
	OverBudget bool    `json:"over_budget,omitempty"`
}

// IngestNsPerRef is the per-reference ingest cost, zero when no
// references arrived.
func (p PeriodRecord) IngestNsPerRef() float64 {
	if p.Refs == 0 {
		return 0
	}
	return float64(p.IngestNs) / float64(p.Refs)
}

// DefaultDepth is the ring capacity used when New is given n ≤ 0.
const DefaultDepth = 64

// Recorder is a fixed-size ring of the last N period records plus a
// cumulative energy ledger, safe for concurrent use. A nil *Recorder
// is a valid disabled recorder.
type Recorder struct {
	mu    sync.Mutex
	ring  []PeriodRecord
	next  int   // ring index the next Record lands in
	total int64 // records ever written
	sum   Ledger
}

// New returns a recorder holding the last n periods (DefaultDepth when
// n ≤ 0).
func New(n int) *Recorder {
	if n <= 0 {
		n = DefaultDepth
	}
	return &Recorder{ring: make([]PeriodRecord, 0, n)}
}

// Enabled reports whether the recorder is live (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends one period record, evicting the oldest when the ring
// is full, and folds its energy into the cumulative ledger. No-op on a
// nil receiver.
func (r *Recorder) Record(rec PeriodRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.ring)
	r.total++
	r.sum.Add(rec.Energy)
	r.mu.Unlock()
}

// AmendCheckpoint attaches a checkpoint wall time to the most recent
// record for disk (checkpoints are written after the period record is
// cut, outside the shard lock). No-op when the record has rotated out
// or on a nil receiver.
func (r *Recorder) AmendCheckpoint(disk string, period int64, ns int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for i := range r.ring {
		if r.ring[i].Disk == disk && r.ring[i].Period == period {
			r.ring[i].CheckpointNs = ns
			break
		}
	}
	r.mu.Unlock()
}

// Last returns up to n records, oldest first, newest last. n ≤ 0 means
// everything retained. Nil receiver returns nil.
func (r *Recorder) Last(n int) []PeriodRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ln := len(r.ring)
	if n <= 0 || n > ln {
		n = ln
	}
	out := make([]PeriodRecord, 0, n)
	// Oldest retained record sits at next when the ring has wrapped,
	// at 0 otherwise.
	start := 0
	if ln == cap(r.ring) {
		start = r.next
	}
	for i := ln - n; i < ln; i++ {
		out = append(out, r.ring[(start+i)%ln])
	}
	return out
}

// Total returns how many records were ever written (≥ len(Last(0))).
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Sum returns the cumulative energy ledger over every record ever
// written, including rotated-out ones.
func (r *Recorder) Sum() Ledger {
	if r == nil {
		return Ledger{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sum
}

// Depth returns the ring capacity; zero on a nil receiver.
func (r *Recorder) Depth() int {
	if r == nil {
		return 0
	}
	return cap(r.ring)
}

// DecideNsQuantile returns the q-quantile (0 ≤ q ≤ 1) of DecideNs over
// the retained records, zero when empty. Nearest-rank on the retained
// window — post-mortem precision, not statistics.
func (r *Recorder) DecideNsQuantile(q float64) int64 {
	recs := r.Last(0)
	if len(recs) == 0 {
		return 0
	}
	ns := make([]int64, len(recs))
	for i, rec := range recs {
		ns[i] = rec.DecideNs
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	i := int(q*float64(len(ns))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(ns) {
		i = len(ns) - 1
	}
	return ns[i]
}

// WriteDump writes the retained records as JSON lines, oldest first —
// the SIGQUIT post-mortem format. Nil receiver writes nothing.
func (r *Recorder) WriteDump(w io.Writer) error {
	for _, rec := range r.Last(0) {
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("flight: marshal period %d: %w", rec.Period, err)
		}
		if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
			return err
		}
	}
	return nil
}
