package cache

import (
	"math/rand"
	"testing"
)

// TestChurnInvariants drives the open-addressed implementation through a
// randomized interleaving of Insert/Lookup/Resize/InvalidateBank and
// checks, after every operation, the invariants the rest of the system
// leans on:
//
//   - lowest-first allocation: every Insert lands in the lowest free
//     frame, so occupancy stays packed into low-numbered banks and
//     "enabled banks = ceil(capacity/bank)" is honest power accounting;
//   - count/capacity consistency and bank-occupancy bookkeeping;
//   - the page→frame table agrees with frame-indexed state after
//     backward-shift deletions.
func TestChurnInvariants(t *testing.T) {
	const (
		totalFrames  = 96
		pagesPerBank = 8
		pageSpace    = 512
	)
	rng := rand.New(rand.NewSource(11))
	c := New(totalFrames, pagesPerBank)
	resident := map[int64]int64{} // page -> frame

	check := func(op string) {
		t.Helper()
		if got := c.Len(); got != int64(len(resident)) {
			t.Fatalf("%s: Len = %d, want %d", op, got, len(resident))
		}
		if c.Len() > c.Capacity() {
			t.Fatalf("%s: count %d exceeds capacity %d", op, c.Len(), c.Capacity())
		}
		occupied := map[int64]bool{}
		var perBank [totalFrames/pagesPerBank + 1]int64
		for page, frame := range resident {
			f, hit := c.Peek(page)
			if !hit || f != frame {
				t.Fatalf("%s: Peek(%d) = %d,%v want %d,true", op, page, f, hit, frame)
			}
			occupied[frame] = true
			perBank[c.BankOf(frame)]++
		}
		for b := 0; b < c.Banks(); b++ {
			if got := c.BankOccupancy(b); got != perBank[b] {
				t.Fatalf("%s: BankOccupancy(%d) = %d, want %d", op, b, got, perBank[b])
			}
		}
	}

	lowestFree := func() int64 {
		used := map[int64]bool{}
		for _, f := range resident {
			used[f] = true
		}
		for f := int64(0); f < totalFrames; f++ {
			if !used[f] {
				return f
			}
		}
		return -1
	}

	for op := 0; op < 30000; op++ {
		switch rng.Intn(10) {
		case 0: // resize
			c.Resize(int64(1 + rng.Intn(totalFrames+8)))
			// Shrink evicts from the LRU tail; mirror by trusting the
			// cache and resyncing the model from Peek below.
			for page := range resident {
				if _, hit := c.Peek(page); !hit {
					delete(resident, page)
				}
			}
			check("Resize")
		case 1: // invalidate a bank
			bank := rng.Intn(c.Banks())
			n := c.InvalidateBank(bank)
			var dropped int64
			for page, frame := range resident {
				if c.BankOf(frame) == bank {
					delete(resident, page)
					dropped++
				}
			}
			if n != dropped {
				t.Fatalf("InvalidateBank(%d) = %d, want %d", bank, n, dropped)
			}
			check("InvalidateBank")
		case 2, 3: // lookup (possibly miss)
			page := rng.Int63n(pageSpace)
			_, hit := c.Lookup(page)
			_, want := resident[page]
			if hit != want {
				t.Fatalf("Lookup(%d) = %v, want %v", page, hit, want)
			}
		default: // insert a non-resident page
			page := rng.Int63n(pageSpace)
			if _, ok := resident[page]; ok {
				continue
			}
			wasFull := c.Len() >= c.Capacity()
			wantFrame := lowestFree()
			frame, evicted := c.Insert(page)
			if evicted >= 0 {
				delete(resident, evicted)
				if !wasFull {
					t.Fatalf("Insert(%d) evicted %d below capacity", page, evicted)
				}
				// The eviction may have freed a lower frame than any free
				// before it; recompute.
				wantFrame = lowestFree()
			}
			if frame != wantFrame {
				t.Fatalf("Insert(%d) used frame %d, want lowest free %d", page, frame, wantFrame)
			}
			resident[page] = frame
			check("Insert")
		}
	}
}

// TestInvalidateThenInsertRefillsLowest pins the interaction the
// disable policy depends on: after a whole bank is invalidated, new
// inserts refill that bank's frames (the lowest free) before touching
// higher banks.
func TestInvalidateThenInsertRefillsLowest(t *testing.T) {
	c := New(32, 8)
	for p := int64(0); p < 32; p++ {
		c.Insert(p)
	}
	if n := c.InvalidateBank(1); n != 8 {
		t.Fatalf("InvalidateBank(1) = %d, want 8", n)
	}
	for i := int64(0); i < 8; i++ {
		frame, evicted := c.Insert(100 + i)
		if evicted != -1 {
			t.Fatalf("unexpected eviction of %d while bank 1 had free frames", evicted)
		}
		if want := 8 + i; frame != want {
			t.Fatalf("Insert #%d used frame %d, want %d", i, frame, want)
		}
	}
	if got := c.BankOccupancy(1); got != 8 {
		t.Fatalf("bank 1 occupancy = %d, want 8", got)
	}
}
