// Package cache simulates the operating system's disk cache (page cache):
// an LRU-managed set of page frames in front of the disk, the component
// labelled "disk cache" in Fig. 6 of the paper. It supports the three
// operations the power-management policies need beyond plain lookup:
//
//   - live resizing (the joint method changes the cache capacity every
//     period; shrinking evicts the LRU tail, preserving the inclusion
//     property the stack-based predictor relies on);
//   - bank-granularity invalidation (the "timeout disable" memory policy
//     turns off idle banks, losing their contents);
//   - frame→bank mapping so the memory power model can meter per-bank
//     idleness.
//
// Frames are allocated lowest-first so occupancy stays packed into
// low-numbered banks, which keeps "enabled banks = ceil(capacity/bank)"
// an accurate power accounting for resizing policies.
package cache

import "container/heap"

// entry is one resident page, a node in the intrusive LRU list.
type entry struct {
	page       int64
	frame      int64
	prev, next *entry
}

// PageCache is a frame-based LRU page cache.
type PageCache struct {
	totalFrames  int64
	capacity     int64 // usable frames (≤ totalFrames)
	pagesPerBank int64

	entries map[int64]*entry // page -> entry
	byFrame []*entry         // frame -> entry (nil when free)
	free    frameHeap        // free frame indices, min-heap
	head    *entry           // MRU
	tail    *entry           // LRU
	count   int64
}

// New creates a cache with totalFrames frames grouped into banks of
// pagesPerBank frames. The initial capacity is all frames.
func New(totalFrames, pagesPerBank int64) *PageCache {
	if totalFrames <= 0 || pagesPerBank <= 0 {
		panic("cache: sizes must be positive")
	}
	c := &PageCache{
		totalFrames:  totalFrames,
		capacity:     totalFrames,
		pagesPerBank: pagesPerBank,
		entries:      make(map[int64]*entry),
		byFrame:      make([]*entry, totalFrames),
		free:         make(frameHeap, 0, totalFrames),
	}
	for f := int64(0); f < totalFrames; f++ {
		c.free = append(c.free, f)
	}
	heap.Init(&c.free)
	return c
}

// Len returns the number of resident pages.
func (c *PageCache) Len() int64 { return c.count }

// Capacity returns the current usable frame count.
func (c *PageCache) Capacity() int64 { return c.capacity }

// TotalFrames returns the installed frame count.
func (c *PageCache) TotalFrames() int64 { return c.totalFrames }

// PagesPerBank returns the bank granularity in frames.
func (c *PageCache) PagesPerBank() int64 { return c.pagesPerBank }

// Banks returns the number of banks covering all installed frames.
func (c *PageCache) Banks() int {
	return int((c.totalFrames + c.pagesPerBank - 1) / c.pagesPerBank)
}

// BankOf returns the bank containing the given frame.
func (c *PageCache) BankOf(frame int64) int { return int(frame / c.pagesPerBank) }

// Lookup reports whether page is resident. On a hit the page becomes MRU
// and its frame is returned.
func (c *PageCache) Lookup(page int64) (frame int64, hit bool) {
	e, ok := c.entries[page]
	if !ok {
		return 0, false
	}
	c.moveToFront(e)
	return e.frame, true
}

// Peek reports residency and the frame without touching LRU order.
func (c *PageCache) Peek(page int64) (frame int64, hit bool) {
	e, ok := c.entries[page]
	if !ok {
		return 0, false
	}
	return e.frame, true
}

// Insert makes page resident (it must not already be resident), evicting
// the LRU page if the cache is full. It returns the frame assigned and
// the evicted page (or -1 if none).
func (c *PageCache) Insert(page int64) (frame int64, evicted int64) {
	if _, ok := c.entries[page]; ok {
		panic("cache: Insert of resident page")
	}
	evicted = -1
	if c.count >= c.capacity {
		evicted = c.evictLRU()
	}
	f := heap.Pop(&c.free).(int64)
	e := &entry{page: page, frame: f}
	c.entries[page] = e
	c.byFrame[f] = e
	c.pushFront(e)
	c.count++
	return f, evicted
}

// Resize sets the usable capacity in frames, clamped to the installed
// total. Shrinking evicts LRU pages until the count fits; growth takes
// effect immediately. Returns the number of pages evicted.
func (c *PageCache) Resize(frames int64) int64 {
	if frames < 1 {
		frames = 1
	}
	if frames > c.totalFrames {
		frames = c.totalFrames
	}
	c.capacity = frames
	var n int64
	for c.count > c.capacity {
		c.evictLRU()
		n++
	}
	return n
}

// InvalidateBank removes every resident page whose frame lies in the
// given bank, returning how many pages were dropped. Used by the
// timeout-disable memory policy, where a bank losing power loses data.
func (c *PageCache) InvalidateBank(bank int) int64 {
	lo := int64(bank) * c.pagesPerBank
	hi := lo + c.pagesPerBank
	if hi > c.totalFrames {
		hi = c.totalFrames
	}
	var n int64
	for f := lo; f < hi; f++ {
		if e := c.byFrame[f]; e != nil {
			c.remove(e)
			n++
		}
	}
	return n
}

// BankOccupancy returns the number of resident pages in the given bank.
func (c *PageCache) BankOccupancy(bank int) int64 {
	lo := int64(bank) * c.pagesPerBank
	hi := lo + c.pagesPerBank
	if hi > c.totalFrames {
		hi = c.totalFrames
	}
	var n int64
	for f := lo; f < hi; f++ {
		if c.byFrame[f] != nil {
			n++
		}
	}
	return n
}

func (c *PageCache) evictLRU() int64 {
	e := c.tail
	if e == nil {
		return -1
	}
	c.remove(e)
	return e.page
}

func (c *PageCache) remove(e *entry) {
	c.unlink(e)
	delete(c.entries, e.page)
	c.byFrame[e.frame] = nil
	heap.Push(&c.free, e.frame)
	c.count--
}

func (c *PageCache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *PageCache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *PageCache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// frameHeap is a min-heap of free frame indices.
type frameHeap []int64

func (h frameHeap) Len() int            { return len(h) }
func (h frameHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h frameHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *frameHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *frameHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
