// Package cache simulates the operating system's disk cache (page cache):
// an LRU-managed set of page frames in front of the disk, the component
// labelled "disk cache" in Fig. 6 of the paper. It supports the three
// operations the power-management policies need beyond plain lookup:
//
//   - live resizing (the joint method changes the cache capacity every
//     period; shrinking evicts the LRU tail, preserving the inclusion
//     property the stack-based predictor relies on);
//   - bank-granularity invalidation (the "timeout disable" memory policy
//     turns off idle banks, losing their contents);
//   - frame→bank mapping so the memory power model can meter per-bank
//     idleness.
//
// Frames are allocated lowest-first so occupancy stays packed into
// low-numbered banks, which keeps "enabled banks = ceil(capacity/bank)"
// an accurate power accounting for resizing policies.
//
// The implementation is flat-array based: residency is an open-addressed
// page→frame table (internal/intmap), the LRU list is a pair of
// frame-indexed prev/next arrays, and free frames sit in an inline int32
// min-heap — no per-page heap allocation and no container/heap boxing on
// the per-access path.
package cache

import "jointpm/internal/intmap"

// nilFrame terminates the LRU list and marks free frames in the
// frame-indexed arrays.
const nilFrame = -1

// PageCache is a frame-based LRU page cache.
type PageCache struct {
	totalFrames  int64
	capacity     int64 // usable frames (≤ totalFrames)
	pagesPerBank int64

	table *intmap.Map // page -> frame
	pages []int64     // frame -> resident page, nilFrame when free
	prev  []int32     // frame -> more-recently-used neighbour
	next  []int32     // frame -> less-recently-used neighbour
	free  frameHeap   // free frame indices, min-heap
	head  int32       // MRU frame
	tail  int32       // LRU frame
	count int64
}

// New creates a cache with totalFrames frames grouped into banks of
// pagesPerBank frames. The initial capacity is all frames.
func New(totalFrames, pagesPerBank int64) *PageCache {
	if totalFrames <= 0 || pagesPerBank <= 0 {
		panic("cache: sizes must be positive")
	}
	if totalFrames >= 1<<31 {
		panic("cache: frame count exceeds int32 frame index range")
	}
	c := &PageCache{
		totalFrames:  totalFrames,
		capacity:     totalFrames,
		pagesPerBank: pagesPerBank,
		table:        intmap.New(1024),
		pages:        make([]int64, totalFrames),
		prev:         make([]int32, totalFrames),
		next:         make([]int32, totalFrames),
		free:         make(frameHeap, totalFrames),
		head:         nilFrame,
		tail:         nilFrame,
	}
	for f := int64(0); f < totalFrames; f++ {
		c.pages[f] = nilFrame
		c.free[f] = int32(f) // ascending order is already a valid min-heap
	}
	return c
}

// Len returns the number of resident pages.
func (c *PageCache) Len() int64 { return c.count }

// Capacity returns the current usable frame count.
func (c *PageCache) Capacity() int64 { return c.capacity }

// TotalFrames returns the installed frame count.
func (c *PageCache) TotalFrames() int64 { return c.totalFrames }

// PagesPerBank returns the bank granularity in frames.
func (c *PageCache) PagesPerBank() int64 { return c.pagesPerBank }

// Banks returns the number of banks covering all installed frames.
func (c *PageCache) Banks() int {
	return int((c.totalFrames + c.pagesPerBank - 1) / c.pagesPerBank)
}

// BankOf returns the bank containing the given frame.
func (c *PageCache) BankOf(frame int64) int { return int(frame / c.pagesPerBank) }

// Lookup reports whether page is resident. On a hit the page becomes MRU
// and its frame is returned.
func (c *PageCache) Lookup(page int64) (frame int64, hit bool) {
	f, ok := c.table.Get(page)
	if !ok {
		return 0, false
	}
	c.moveToFront(int32(f))
	return f, true
}

// Peek reports residency and the frame without touching LRU order.
func (c *PageCache) Peek(page int64) (frame int64, hit bool) {
	f, ok := c.table.Get(page)
	if !ok {
		return 0, false
	}
	return f, true
}

// Insert makes page resident (it must not already be resident), evicting
// the LRU page if the cache is full. It returns the frame assigned and
// the evicted page (or -1 if none).
func (c *PageCache) Insert(page int64) (frame int64, evicted int64) {
	if _, ok := c.table.Get(page); ok {
		panic("cache: Insert of resident page")
	}
	evicted = -1
	if c.count >= c.capacity {
		evicted = c.evictLRU()
	}
	f := c.free.pop()
	c.table.Put(page, int64(f))
	c.pages[f] = page
	c.pushFront(f)
	c.count++
	return int64(f), evicted
}

// Resize sets the usable capacity in frames, clamped to the installed
// total. Shrinking evicts LRU pages until the count fits; growth takes
// effect immediately. Returns the number of pages evicted.
func (c *PageCache) Resize(frames int64) int64 {
	if frames < 1 {
		frames = 1
	}
	if frames > c.totalFrames {
		frames = c.totalFrames
	}
	c.capacity = frames
	var n int64
	for c.count > c.capacity {
		c.evictLRU()
		n++
	}
	return n
}

// InvalidateBank removes every resident page whose frame lies in the
// given bank, returning how many pages were dropped. Used by the
// timeout-disable memory policy, where a bank losing power loses data.
func (c *PageCache) InvalidateBank(bank int) int64 {
	lo := int64(bank) * c.pagesPerBank
	hi := lo + c.pagesPerBank
	if hi > c.totalFrames {
		hi = c.totalFrames
	}
	var n int64
	for f := lo; f < hi; f++ {
		if c.pages[f] != nilFrame {
			c.remove(int32(f))
			n++
		}
	}
	return n
}

// BankOccupancy returns the number of resident pages in the given bank.
func (c *PageCache) BankOccupancy(bank int) int64 {
	lo := int64(bank) * c.pagesPerBank
	hi := lo + c.pagesPerBank
	if hi > c.totalFrames {
		hi = c.totalFrames
	}
	var n int64
	for f := lo; f < hi; f++ {
		if c.pages[f] != nilFrame {
			n++
		}
	}
	return n
}

func (c *PageCache) evictLRU() int64 {
	f := c.tail
	if f == nilFrame {
		return -1
	}
	page := c.pages[f]
	c.remove(f)
	return page
}

func (c *PageCache) remove(f int32) {
	c.unlink(f)
	c.table.Delete(c.pages[f])
	c.pages[f] = nilFrame
	c.free.push(f)
	c.count--
}

func (c *PageCache) pushFront(f int32) {
	c.prev[f] = nilFrame
	c.next[f] = c.head
	if c.head != nilFrame {
		c.prev[c.head] = f
	}
	c.head = f
	if c.tail == nilFrame {
		c.tail = f
	}
}

func (c *PageCache) unlink(f int32) {
	if p := c.prev[f]; p != nilFrame {
		c.next[p] = c.next[f]
	} else {
		c.head = c.next[f]
	}
	if n := c.next[f]; n != nilFrame {
		c.prev[n] = c.prev[f]
	} else {
		c.tail = c.prev[f]
	}
}

func (c *PageCache) moveToFront(f int32) {
	if c.head == f {
		return
	}
	c.unlink(f)
	c.pushFront(f)
}

// frameHeap is an inline min-heap of free frame indices; pop always
// returns the lowest free frame, which is what keeps occupancy packed
// into low-numbered banks.
type frameHeap []int32

func (h *frameHeap) push(f int32) {
	s := append(*h, f)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
	*h = s
}

func (h *frameHeap) pop() int32 {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && s[r] < s[l] {
			min = r
		}
		if s[i] <= s[min] {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
	return top
}
