package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLookupInsertEvict(t *testing.T) {
	c := New(2, 1)
	if _, hit := c.Lookup(10); hit {
		t.Fatal("hit in empty cache")
	}
	c.Insert(10)
	c.Insert(11)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, hit := c.Lookup(10); !hit {
		t.Fatal("miss on resident page")
	}
	// 10 is now MRU; inserting 12 evicts 11.
	if _, ev := c.Insert(12); ev != 11 {
		t.Fatalf("evicted %d, want 11", ev)
	}
	if _, hit := c.Lookup(11); hit {
		t.Fatal("evicted page still resident")
	}
	if _, hit := c.Lookup(10); !hit {
		t.Fatal("MRU page evicted")
	}
}

func TestInsertPanicsOnResident(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := New(4, 1)
	c.Insert(1)
	c.Insert(1)
}

func TestLowestFrameFirst(t *testing.T) {
	c := New(8, 2)
	f0, _ := c.Insert(100)
	f1, _ := c.Insert(101)
	if f0 != 0 || f1 != 1 {
		t.Fatalf("frames %d,%d; want 0,1", f0, f1)
	}
	if c.BankOf(f0) != 0 || c.BankOf(3) != 1 {
		t.Error("bank mapping wrong")
	}
}

func TestResizeShrinkEvictsLRUTail(t *testing.T) {
	c := New(8, 2)
	for p := int64(0); p < 8; p++ {
		c.Insert(p)
	}
	c.Lookup(0) // 0 becomes MRU
	n := c.Resize(3)
	if n != 5 || c.Len() != 3 {
		t.Fatalf("evicted %d, len %d", n, c.Len())
	}
	// Survivors: most recent three references = 0, 7, 6.
	for _, p := range []int64{0, 7, 6} {
		if _, hit := c.Peek(p); !hit {
			t.Errorf("page %d should survive", p)
		}
	}
	for _, p := range []int64{1, 2, 3, 4, 5} {
		if _, hit := c.Peek(p); hit {
			t.Errorf("page %d should be evicted", p)
		}
	}
}

func TestResizeGrow(t *testing.T) {
	c := New(8, 2)
	c.Resize(2)
	c.Insert(1)
	c.Insert(2)
	if _, ev := c.Insert(3); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	c.Resize(4)
	if _, ev := c.Insert(4); ev != -1 {
		t.Fatal("grow did not add room")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestResizeClamps(t *testing.T) {
	c := New(8, 2)
	c.Resize(0)
	if c.Capacity() != 1 {
		t.Errorf("capacity floor = %d, want 1", c.Capacity())
	}
	c.Resize(100)
	if c.Capacity() != 8 {
		t.Errorf("capacity ceiling = %d, want 8", c.Capacity())
	}
}

func TestInvalidateBank(t *testing.T) {
	c := New(8, 2) // 4 banks of 2 frames
	for p := int64(0); p < 6; p++ {
		c.Insert(p) // frames 0..5, banks 0..2
	}
	n := c.InvalidateBank(1) // frames 2,3 → pages 2,3
	if n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	for _, p := range []int64{2, 3} {
		if _, hit := c.Peek(p); hit {
			t.Errorf("page %d survived invalidation", p)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Freed frames are reused (lowest-first).
	f, _ := c.Insert(50)
	if f != 2 {
		t.Errorf("reused frame %d, want 2", f)
	}
	if got := c.BankOccupancy(1); got != 1 {
		t.Errorf("bank 1 occupancy = %d", got)
	}
}

func TestBankOccupancyAndBanks(t *testing.T) {
	c := New(7, 2) // last bank is a partial bank
	if c.Banks() != 4 {
		t.Fatalf("Banks = %d, want 4", c.Banks())
	}
	for p := int64(0); p < 7; p++ {
		c.Insert(p)
	}
	if got := c.BankOccupancy(3); got != 1 {
		t.Errorf("partial bank occupancy = %d, want 1", got)
	}
	if got := c.InvalidateBank(3); got != 1 {
		t.Errorf("partial bank invalidation = %d, want 1", got)
	}
}

func TestPeekDoesNotTouch(t *testing.T) {
	c := New(2, 1)
	c.Insert(1)
	c.Insert(2)
	c.Peek(1) // must NOT move 1 to MRU
	if _, ev := c.Insert(3); ev != 1 {
		t.Errorf("evicted %d; Peek must not refresh LRU position", ev)
	}
}

// Property: the cache's resident set always equals the top-capacity pages
// of a reference LRU model, under random lookups, inserts and resizes
// (without bank invalidation, which deliberately breaks strict LRU).
func TestQuickMatchesLRUModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const frames = 32
		c := New(frames, 4)
		var model []int64 // MRU first
		capacity := int64(frames)
		touch := func(p int64) {
			for i, q := range model {
				if q == p {
					copy(model[1:i+1], model[:i])
					model[0] = p
					return
				}
			}
			model = append(model, 0)
			copy(model[1:], model)
			model[0] = p
			if int64(len(model)) > capacity {
				model = model[:capacity]
			}
		}
		for op := 0; op < 1500; op++ {
			switch rng.Intn(10) {
			case 0:
				capacity = int64(1 + rng.Intn(frames))
				c.Resize(capacity)
				if int64(len(model)) > capacity {
					model = model[:capacity]
				}
			default:
				p := int64(rng.Intn(48))
				_, hit := c.Lookup(p)
				modelHit := false
				for _, q := range model {
					if q == p {
						modelHit = true
						break
					}
				}
				if hit != modelHit {
					return false
				}
				if !hit {
					c.Insert(p)
				}
				touch(p)
			}
			if c.Len() != int64(len(model)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadSizes(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { New(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
