package fenwick

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicSums(t *testing.T) {
	tr := New(8)
	tr.Add(0, 1)
	tr.Add(3, 5)
	tr.Add(7, 2)
	tests := []struct {
		i    int
		want int64
	}{
		{-1, 0}, {0, 1}, {1, 1}, {2, 1}, {3, 6}, {6, 6}, {7, 8}, {100, 8},
	}
	for _, tt := range tests {
		if got := tr.PrefixSum(tt.i); got != tt.want {
			t.Errorf("PrefixSum(%d) = %d, want %d", tt.i, got, tt.want)
		}
	}
	if got := tr.RangeSum(1, 3); got != 5 {
		t.Errorf("RangeSum(1,3) = %d, want 5", got)
	}
	if got := tr.RangeSum(4, 6); got != 0 {
		t.Errorf("RangeSum(4,6) = %d, want 0", got)
	}
	if got := tr.RangeSum(5, 2); got != 0 {
		t.Errorf("RangeSum(5,2) = %d, want 0", got)
	}
	if got := tr.Total(); got != 8 {
		t.Errorf("Total = %d, want 8", got)
	}
}

func TestNegativeDeltas(t *testing.T) {
	tr := New(4)
	tr.Add(2, 3)
	tr.Add(2, -3)
	if got := tr.Total(); got != 0 {
		t.Errorf("Total after cancel = %d, want 0", got)
	}
}

func TestFindKth(t *testing.T) {
	tr := New(10)
	// Live positions: 1, 4, 9.
	tr.Add(1, 1)
	tr.Add(4, 1)
	tr.Add(9, 1)
	tests := []struct {
		k    int64
		want int
	}{
		{1, 1}, {2, 4}, {3, 9}, {4, 10}, // k beyond total yields Len()
	}
	for _, tt := range tests {
		if got := tr.FindKth(tt.k); got != tt.want {
			t.Errorf("FindKth(%d) = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestFindKthWithWeights(t *testing.T) {
	tr := New(6)
	tr.Add(0, 2)
	tr.Add(3, 3)
	if got := tr.FindKth(1); got != 0 {
		t.Errorf("FindKth(1) = %d, want 0", got)
	}
	if got := tr.FindKth(2); got != 0 {
		t.Errorf("FindKth(2) = %d, want 0", got)
	}
	if got := tr.FindKth(3); got != 3 {
		t.Errorf("FindKth(3) = %d, want 3", got)
	}
	if got := tr.FindKth(5); got != 3 {
		t.Errorf("FindKth(5) = %d, want 3", got)
	}
}

func TestReset(t *testing.T) {
	tr := New(16)
	for i := 0; i < 16; i++ {
		tr.Add(i, int64(i))
	}
	tr.Reset()
	if got := tr.Total(); got != 0 {
		t.Errorf("Total after Reset = %d, want 0", got)
	}
	tr.Add(5, 7)
	if got := tr.PrefixSum(5); got != 7 {
		t.Errorf("PrefixSum(5) after Reset+Add = %d, want 7", got)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	New(4).Add(4, 1)
}

func TestZeroSize(t *testing.T) {
	tr := New(0)
	if got := tr.PrefixSum(0); got != 0 {
		t.Errorf("empty tree PrefixSum = %d", got)
	}
	if got := tr.Total(); got != 0 {
		t.Errorf("empty tree Total = %d", got)
	}
}

// TestQuickAgainstNaive drives the tree against a plain slice model with
// random operations.
func TestQuickAgainstNaive(t *testing.T) {
	const n = 64
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(n)
		model := make([]int64, n)
		for op := 0; op < 500; op++ {
			switch rng.Intn(3) {
			case 0:
				i := rng.Intn(n)
				d := int64(rng.Intn(11) - 5)
				tr.Add(i, d)
				model[i] += d
			case 1:
				i := rng.Intn(n + 2)
				var want int64
				for j := 0; j <= i && j < n; j++ {
					want += model[j]
				}
				if got := tr.PrefixSum(i); got != want {
					return false
				}
			case 2:
				lo, hi := rng.Intn(n), rng.Intn(n)
				var want int64
				for j := lo; j <= hi; j++ {
					want += model[j]
				}
				if got := tr.RangeSum(lo, hi); got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFindKth checks FindKth against a linear scan for random
// non-negative count vectors.
func TestQuickFindKth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		tr := New(n)
		model := make([]int64, n)
		for i := range model {
			v := int64(rng.Intn(3))
			model[i] = v
			tr.Add(i, v)
		}
		total := tr.Total()
		for k := int64(1); k <= total+1; k++ {
			want := n
			var cum int64
			for i, v := range model {
				cum += v
				if cum >= k {
					want = i
					break
				}
			}
			if got := tr.FindKth(k); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAppendPrefixSums checks the O(n) bulk materialisation against
// one PrefixSum query per index, including appends onto a non-empty dst.
func TestQuickAppendPrefixSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		tr := New(n)
		for i := 0; i < n; i++ {
			tr.Add(rng.Intn(n), int64(rng.Intn(7))-3)
		}
		prefix := 3 + rng.Intn(4)
		dst := make([]int64, prefix)
		for i := range dst {
			dst[i] = int64(100 + i)
		}
		got := tr.AppendPrefixSums(dst)
		if len(got) != prefix+n {
			return false
		}
		for i := 0; i < prefix; i++ {
			if got[i] != int64(100+i) {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if got[prefix+i] != tr.PrefixSum(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
