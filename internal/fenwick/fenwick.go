// Package fenwick implements a Fenwick (binary indexed) tree over int64
// counts. The extended-LRU stack-distance engine uses it to count, in
// O(log n), how many distinct pages were referenced more recently than a
// given page — the page's LRU stack depth.
package fenwick

// Tree is a Fenwick tree over indices [0, n). The zero value is unusable;
// construct with New.
type Tree struct {
	a []int64
}

// New returns a tree of size n with all counts zero.
func New(n int) *Tree {
	if n < 0 {
		panic("fenwick: negative size")
	}
	return &Tree{a: make([]int64, n+1)}
}

// Len returns the index capacity of the tree.
func (t *Tree) Len() int { return len(t.a) - 1 }

// Add adds delta to index i.
func (t *Tree) Add(i int, delta int64) {
	if i < 0 || i >= t.Len() {
		panic("fenwick: index out of range")
	}
	for i++; i < len(t.a); i += i & -i {
		t.a[i] += delta
	}
}

// PrefixSum returns the sum of indices [0, i]. PrefixSum(-1) is 0.
func (t *Tree) PrefixSum(i int) int64 {
	if i >= t.Len() {
		i = t.Len() - 1
	}
	var s int64
	for i++; i > 0; i -= i & -i {
		s += t.a[i]
	}
	return s
}

// RangeSum returns the sum of indices [lo, hi]. Returns 0 if lo > hi.
func (t *Tree) RangeSum(lo, hi int) int64 {
	if lo > hi {
		return 0
	}
	if lo <= 0 {
		return t.PrefixSum(hi)
	}
	return t.PrefixSum(hi) - t.PrefixSum(lo-1)
}

// Total returns the sum over all indices.
func (t *Tree) Total() int64 { return t.PrefixSum(t.Len() - 1) }

// FindKth returns the smallest index i such that PrefixSum(i) >= k, or
// Len() if the total is < k. k must be >= 1. This supports order-statistic
// queries over the tree in O(log n).
func (t *Tree) FindKth(k int64) int {
	if k <= 0 {
		panic("fenwick: k must be >= 1")
	}
	pos := 0
	// Highest power of two <= len.
	bit := 1
	for bit<<1 <= t.Len() {
		bit <<= 1
	}
	rem := k
	for ; bit > 0; bit >>= 1 {
		next := pos + bit
		if next < len(t.a) && t.a[next] < rem {
			pos = next
			rem -= t.a[next]
		}
	}
	return pos // pos is 0-based index of the k-th element
}

// AppendPrefixSums appends all Len() prefix sums to dst and returns the
// extended slice: the k-th appended value equals PrefixSum(k). One query
// per index would cost O(n log n); this materialises them in O(n) using
// the tree's own structure — node i already holds the sum of the lowbit(i)
// indices ending at i, so prefix(i) = prefix(i − lowbit(i)) + a[i], and
// the needed smaller prefix is always already computed. The depth-
// histogram decision path uses this to turn a whole profile query into
// one linear pass.
func (t *Tree) AppendPrefixSums(dst []int64) []int64 {
	n := t.Len()
	base := len(dst)
	for i := 1; i <= n; i++ {
		s := t.a[i]
		if j := i - i&(-i); j > 0 {
			s += dst[base+j-1]
		}
		dst = append(dst, s)
	}
	return dst
}

// Reset zeroes all counts, retaining capacity.
func (t *Tree) Reset() {
	for i := range t.a {
		t.a[i] = 0
	}
}
