// Package shutdown coordinates a command's cleanup between its normal
// return path and asynchronous termination signals. The bug it exists
// for: cleanups registered with the defer statement never run when a
// SIGINT/SIGTERM arrives, so an interrupted run loses its decision-trace
// tail, its pprof profiles, and exits 0 or 1 instead of the conventional
// 128+signal. Registering the cleanups on a Stack instead makes them run
// exactly once, newest-first, from whichever path finishes first.
package shutdown

import (
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Stack is a LIFO list of cleanup functions that runs at most once.
// It is safe for concurrent use; the loser of the race between the
// normal return path and the signal handler becomes a no-op.
type Stack struct {
	name string
	mu   sync.Mutex
	fns  []func() error
	ran  bool
}

// NewStack returns an empty stack. name prefixes signal-path error
// output (conventionally the command name).
func NewStack(name string) *Stack { return &Stack{name: name} }

// Defer registers f to run during shutdown, newest-first like the defer
// statement. Registering after the stack has run executes f immediately
// (the shutdown is already in progress; dropping f would leak).
func (s *Stack) Defer(f func() error) {
	s.mu.Lock()
	ran := s.ran
	if !ran {
		s.fns = append(s.fns, f)
	}
	s.mu.Unlock()
	if ran {
		f() //nolint:errcheck // late registration: best-effort cleanup
	}
}

// Run executes the registered cleanups newest-first and returns the
// first error. Only the first call runs them; subsequent calls return
// nil immediately.
func (s *Stack) Run() error {
	s.mu.Lock()
	if s.ran {
		s.mu.Unlock()
		return nil
	}
	s.ran = true
	fns := s.fns
	s.fns = nil
	s.mu.Unlock()
	var first error
	for i := len(fns) - 1; i >= 0; i-- {
		if err := fns[i](); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// HandleSignals installs a handler for sigs (SIGINT and SIGTERM when
// none are given) that runs the stack and exits with the conventional
// 128+signal status. The returned stop function uninstalls the handler;
// call it once the normal return path owns shutdown again.
func (s *Stack) HandleSignals(sigs ...os.Signal) (stop func()) {
	if len(sigs) == 0 {
		sigs = []os.Signal{syscall.SIGINT, syscall.SIGTERM}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			if err := s.Run(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: shutdown after %v: %v\n", s.name, sig, err)
			} else {
				fmt.Fprintf(os.Stderr, "%s: interrupted by %v\n", s.name, sig)
			}
			os.Exit(ExitCode(sig))
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// ExitCode maps a termination signal to the shell convention 128+N
// (130 for SIGINT, 143 for SIGTERM); 1 for non-POSIX signals.
func ExitCode(sig os.Signal) int {
	if sn, ok := sig.(syscall.Signal); ok {
		return 128 + int(sn)
	}
	return 1
}
