package shutdown

import (
	"errors"
	"sync"
	"syscall"
	"testing"
)

func TestRunLIFOOnce(t *testing.T) {
	s := NewStack("test")
	var order []int
	s.Defer(func() error { order = append(order, 1); return nil })
	s.Defer(func() error { order = append(order, 2); return errors.New("two") })
	s.Defer(func() error { order = append(order, 3); return errors.New("three") })
	err := s.Run()
	if err == nil || err.Error() != "three" {
		t.Fatalf("Run err = %v, want first (newest) error", err)
	}
	if len(order) != 3 || order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("run order = %v, want [3 2 1]", order)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("second Run = %v, want nil no-op", err)
	}
	if len(order) != 3 {
		t.Fatal("second Run re-executed cleanups")
	}
}

func TestDeferAfterRunExecutesImmediately(t *testing.T) {
	s := NewStack("test")
	s.Run()
	ran := false
	s.Defer(func() error { ran = true; return nil })
	if !ran {
		t.Fatal("late Defer was dropped")
	}
}

// TestConcurrentRun races the two shutdown paths; each cleanup must run
// exactly once.
func TestConcurrentRun(t *testing.T) {
	for iter := 0; iter < 100; iter++ {
		s := NewStack("test")
		var mu sync.Mutex
		count := 0
		for i := 0; i < 5; i++ {
			s.Defer(func() error {
				mu.Lock()
				count++
				mu.Unlock()
				return nil
			})
		}
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Run()
			}()
		}
		wg.Wait()
		if count != 5 {
			t.Fatalf("cleanups ran %d times, want 5", count)
		}
	}
}

func TestExitCode(t *testing.T) {
	if got := ExitCode(syscall.SIGTERM); got != 143 {
		t.Errorf("SIGTERM exit code = %d, want 143", got)
	}
	if got := ExitCode(syscall.SIGINT); got != 130 {
		t.Errorf("SIGINT exit code = %d, want 130", got)
	}
}
