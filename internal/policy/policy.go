// Package policy defines the 15 power-management methods the paper
// compares (Section V-A), each a combination of a disk policy and a
// memory policy:
//
//	disk:   2T  two-competitive timeout (timeout = break-even time)
//	        AD  adaptive timeout (Douglis et al.)
//	memory: FM  fixed memory size, banks nap after accesses
//	        PD  timeout power-down of idle banks
//	        DS  timeout disable of idle banks
//
// plus the always-on baseline (disk never spins down, all memory naps)
// and the paper's joint method, which manages both resources together
// (implemented in internal/core and orchestrated by internal/sim).
package policy

import (
	"fmt"
	"sort"
	"strings"

	"jointpm/internal/disk"
	"jointpm/internal/mem"
	"jointpm/internal/simtime"
)

// DiskKind selects the disk spin-down policy.
type DiskKind int

// Disk policy kinds.
const (
	DiskAlwaysOn DiskKind = iota
	DiskTwoCompetitive
	DiskAdaptive
	DiskJoint // timeout chosen by the joint manager each period
	// DiskPredictive is the exponential-average predictive shutdown
	// (see PredictiveShutdown), an extension beyond the paper's set.
	DiskPredictive
)

func (k DiskKind) String() string {
	switch k {
	case DiskAlwaysOn:
		return "ON"
	case DiskTwoCompetitive:
		return "2T"
	case DiskAdaptive:
		return "AD"
	case DiskJoint:
		return "JT"
	case DiskPredictive:
		return "EA"
	default:
		return "??"
	}
}

// MemKind selects the memory management policy.
type MemKind int

// Memory policy kinds.
const (
	MemFixedNap MemKind = iota // fixed size, banks always nap
	MemPowerDown
	MemDisable
	MemJoint // size chosen by the joint manager each period
)

func (k MemKind) String() string {
	switch k {
	case MemFixedNap:
		return "FM"
	case MemPowerDown:
		return "PD"
	case MemDisable:
		return "DS"
	case MemJoint:
		return "JT"
	default:
		return "??"
	}
}

// BankPolicy maps the method-level memory kind to the bank-metering
// policy used by the mem package.
func (k MemKind) BankPolicy() mem.BankPolicy {
	switch k {
	case MemPowerDown:
		return mem.TimeoutPowerDown
	case MemDisable:
		return mem.TimeoutDisable
	default:
		return mem.AlwaysNap
	}
}

// Method is one named power-management configuration.
type Method struct {
	Disk DiskKind
	Mem  MemKind
	// MemBytes is the memory available to the method: the fixed size for
	// FM, and the installed maximum for PD/DS/joint/always-on.
	MemBytes simtime.Bytes
}

// Joint is the paper's method: both resources managed by the period
// controller over the full installed memory.
func Joint(installed simtime.Bytes) Method {
	return Method{Disk: DiskJoint, Mem: MemJoint, MemBytes: installed}
}

// AlwaysOn is the normalisation baseline: the disk never spins down and
// all installed memory stays in nap.
func AlwaysOn(installed simtime.Bytes) Method {
	return Method{Disk: DiskAlwaysOn, Mem: MemFixedNap, MemBytes: installed}
}

// IsJoint reports whether the method is the joint method.
func (m Method) IsJoint() bool { return m.Disk == DiskJoint || m.Mem == MemJoint }

// Name renders the paper's naming scheme, e.g. "2TFM-8GB", "ADPD-128GB",
// "JOINT", or "ALWAYS-ON".
func (m Method) Name() string {
	if m.IsJoint() {
		return "JOINT"
	}
	if m.Disk == DiskAlwaysOn && m.Mem == MemFixedNap {
		return "ALWAYS-ON"
	}
	return fmt.Sprintf("%v%v-%s", m.Disk, m.Mem, m.MemBytes)
}

// Comparison returns the paper's full comparison set for the given
// installed memory and FM sizes: {2T, AD} × ({FM-size...} ∪ {PD, DS}),
// then the joint method, then the always-on baseline — 16 methods when
// called with the paper's five FM sizes.
func Comparison(installed simtime.Bytes, fmSizes []simtime.Bytes) []Method {
	var out []Method
	for _, dk := range []DiskKind{DiskTwoCompetitive, DiskAdaptive} {
		for _, sz := range fmSizes {
			out = append(out, Method{Disk: dk, Mem: MemFixedNap, MemBytes: sz})
		}
		out = append(out, Method{Disk: dk, Mem: MemPowerDown, MemBytes: installed})
		out = append(out, Method{Disk: dk, Mem: MemDisable, MemBytes: installed})
	}
	out = append(out, Joint(installed))
	out = append(out, AlwaysOn(installed))
	return out
}

// ParseName parses a method name produced by Name. It accepts "JOINT",
// "ALWAYS-ON", and the "<disk><mem>-<size>" scheme (e.g. "ADDS-128GB").
func ParseName(name string) (Method, error) {
	n := strings.ToUpper(strings.TrimSpace(name))
	switch n {
	case "JOINT":
		return Method{Disk: DiskJoint, Mem: MemJoint}, nil
	case "ALWAYS-ON", "ALWAYSON", "ON":
		return Method{Disk: DiskAlwaysOn, Mem: MemFixedNap}, nil
	}
	dash := strings.IndexByte(n, '-')
	if dash < 4 {
		return Method{}, fmt.Errorf("policy: cannot parse method %q", name)
	}
	var m Method
	switch n[:2] {
	case "2T":
		m.Disk = DiskTwoCompetitive
	case "AD":
		m.Disk = DiskAdaptive
	case "ON":
		m.Disk = DiskAlwaysOn
	case "EA":
		m.Disk = DiskPredictive
	default:
		return Method{}, fmt.Errorf("policy: unknown disk policy in %q", name)
	}
	switch n[2:dash] {
	case "FM":
		m.Mem = MemFixedNap
	case "PD":
		m.Mem = MemPowerDown
	case "DS":
		m.Mem = MemDisable
	default:
		return Method{}, fmt.Errorf("policy: unknown memory policy in %q", name)
	}
	sz, err := simtime.ParseBytes(n[dash+1:])
	if err != nil {
		return Method{}, fmt.Errorf("policy: bad size in %q: %w", name, err)
	}
	m.MemBytes = sz
	return m, nil
}

// SortMethods orders methods the way the paper's figures do: 2T group,
// AD group (each FM by ascending size, then PD, DS), then JOINT, then
// ALWAYS-ON.
func SortMethods(ms []Method) {
	rank := func(m Method) (int, int, int64) {
		switch {
		case m.IsJoint():
			return 2, 0, 0
		case m.Disk == DiskAlwaysOn:
			return 3, 0, 0
		default:
			memRank := 0
			if m.Mem == MemPowerDown {
				memRank = 1
			}
			if m.Mem == MemDisable {
				memRank = 2
			}
			return 0, int(m.Disk)*10 + memRank, int64(m.MemBytes)
		}
	}
	sort.SliceStable(ms, func(i, j int) bool {
		g1, k1, s1 := rank(ms[i])
		g2, k2, s2 := rank(ms[j])
		if g1 != g2 {
			return g1 < g2
		}
		if k1 != k2 {
			return k1 < k2
		}
		return s1 < s2
	})
}

// AdaptiveTimeout implements the Douglis et al. adaptive spin-down
// policy with the paper's parameters: start at 10 s, adjust by 5 s steps
// within [5 s, 30 s], increasing when the spin-up delay exceeds 5% of
// the idle interval that preceded it and decreasing otherwise.
type AdaptiveTimeout struct {
	d *disk.Disk

	Start, Min, Max, Step simtime.Seconds
	MaxDelayRatio         float64

	timeout simtime.Seconds
}

// NewAdaptiveTimeout attaches an adaptive policy to the disk with the
// paper's parameters and returns it.
func NewAdaptiveTimeout(d *disk.Disk) *AdaptiveTimeout {
	a := &AdaptiveTimeout{
		d:             d,
		Start:         10,
		Min:           5,
		Max:           30,
		Step:          5,
		MaxDelayRatio: 0.05,
	}
	a.timeout = a.Start
	d.SetTimeout(d.Now(), a.timeout)
	d.SetObserver(a)
	return a
}

// Timeout returns the current adaptive timeout.
func (a *AdaptiveTimeout) Timeout() simtime.Seconds { return a.timeout }

// IdleEnded implements disk.Observer. Only spin-ups carry information
// about the delay the user experienced; idle gaps that never spun down
// leave the timeout unchanged (they caused no delay to amortise).
func (a *AdaptiveTimeout) IdleEnded(idle simtime.Seconds, spunDown bool) {
	if !spunDown {
		return
	}
	ratio := float64(a.d.Spec().SpinUpTime) / float64(idle)
	if ratio > a.MaxDelayRatio {
		a.timeout += a.Step
		if a.timeout > a.Max {
			a.timeout = a.Max
		}
	} else {
		a.timeout -= a.Step
		if a.timeout < a.Min {
			a.timeout = a.Min
		}
	}
	a.d.SetTimeout(a.d.Now(), a.timeout)
}
