package policy

import "testing"

// FuzzParseName: the method-name parser never panics, and any accepted
// sized method round-trips through Name().
func FuzzParseName(f *testing.F) {
	for _, s := range []string{"JOINT", "ALWAYS-ON", "2TFM-8GB", "ADPD-128GB", "EAFM-16GB", "", "2T", "XXYY-1GB"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseName(s)
		if err != nil {
			return
		}
		if m.IsJoint() || m.Disk == DiskAlwaysOn {
			return // size-less canonical names
		}
		again, err := ParseName(m.Name())
		if err != nil {
			t.Fatalf("canonical name %q not re-parseable: %v", m.Name(), err)
		}
		if again != m {
			t.Fatalf("round trip %q -> %q changed method", s, m.Name())
		}
	})
}
