package policy

import (
	"math"
	"testing"

	"jointpm/internal/disk"
	"jointpm/internal/simtime"
)

func TestPredictiveStartsConservative(t *testing.T) {
	d := disk.New(disk.Barracuda(), 0.5)
	NewPredictiveShutdown(d)
	if !math.IsInf(float64(d.Timeout()), 1) {
		t.Fatalf("initial timeout = %v, want +Inf", d.Timeout())
	}
	d.Submit(0, simtime.MB)
	d.FinishTo(1000)
	if d.Stats().SpinDowns != 0 {
		t.Error("spun down before any prediction")
	}
}

func TestPredictiveArmsAfterLongIdle(t *testing.T) {
	d := disk.New(disk.Barracuda(), 0.5)
	p := NewPredictiveShutdown(d)
	d.Submit(0, simtime.MB)
	d.Submit(100, simtime.MB) // 100 s gap observed → prediction 100 s > t_be
	if got := p.Predicted(); got < 90 {
		t.Fatalf("prediction = %v", got)
	}
	if d.Timeout() != 0 {
		t.Fatalf("timeout = %v, want 0 (immediate shutdown)", d.Timeout())
	}
	// The disk spins down right after the request and pays the spin-up on
	// the next arrival.
	_, lat := d.Submit(200, simtime.MB)
	if lat < disk.Barracuda().SpinUpTime {
		t.Errorf("latency %v missing spin-up", lat)
	}
	// Two spin-downs by now: one when the first long gap's zero timeout
	// expired, and one immediately after this request completed (the
	// prediction is still long, so the policy re-arms instantly).
	if d.Stats().SpinDowns != 2 {
		t.Errorf("spin-downs = %d, want 2", d.Stats().SpinDowns)
	}
}

func TestPredictiveBacksOffAfterShortIdle(t *testing.T) {
	d := disk.New(disk.Barracuda(), 0.5)
	p := NewPredictiveShutdown(d)
	d.Submit(0, simtime.MB)
	now := simtime.Seconds(100)
	// A burst of sub-second gaps drags the exponential average below the
	// break-even time and disarms shutdown.
	for i := 0; i < 12; i++ {
		d.Submit(now, simtime.MB)
		now += 0.5
	}
	if p.Predicted() > disk.Barracuda().BreakEven() {
		t.Fatalf("prediction %v did not decay", p.Predicted())
	}
	if !math.IsInf(float64(d.Timeout()), 1) {
		t.Fatalf("timeout = %v, want +Inf after short gaps", d.Timeout())
	}
}

func TestPredictiveExponentialAverage(t *testing.T) {
	d := disk.New(disk.Barracuda(), 0.5)
	p := NewPredictiveShutdown(d)
	p.IdleEnded(100, false)
	if p.Predicted() != 100 {
		t.Fatalf("first observation: %v", p.Predicted())
	}
	p.IdleEnded(0, false)
	if p.Predicted() != 50 {
		t.Fatalf("after 0: %v, want 50", p.Predicted())
	}
	p.IdleEnded(30, false)
	if p.Predicted() != 40 {
		t.Fatalf("after 30: %v, want 40", p.Predicted())
	}
}

func TestPredictiveMethodName(t *testing.T) {
	m := Method{Disk: DiskPredictive, Mem: MemFixedNap, MemBytes: 16 * simtime.GB}
	if m.Name() != "EAFM-16GB" {
		t.Errorf("Name = %q", m.Name())
	}
	parsed, err := ParseName("EAFM-16GB")
	if err != nil || parsed != m {
		t.Errorf("ParseName: %+v, %v", parsed, err)
	}
}
