package policy

import (
	"testing"

	"jointpm/internal/disk"
	"jointpm/internal/simtime"
)

func TestMethodNames(t *testing.T) {
	tests := []struct {
		m    Method
		want string
	}{
		{Method{Disk: DiskTwoCompetitive, Mem: MemFixedNap, MemBytes: 8 * simtime.GB}, "2TFM-8GB"},
		{Method{Disk: DiskAdaptive, Mem: MemPowerDown, MemBytes: 128 * simtime.GB}, "ADPD-128GB"},
		{Method{Disk: DiskTwoCompetitive, Mem: MemDisable, MemBytes: 128 * simtime.GB}, "2TDS-128GB"},
		{Joint(128 * simtime.GB), "JOINT"},
		{AlwaysOn(128 * simtime.GB), "ALWAYS-ON"},
	}
	for _, tt := range tests {
		if got := tt.m.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestParseNameRoundTrip(t *testing.T) {
	names := []string{"2TFM-8GB", "2TFM-16GB", "ADFM-128GB", "2TPD-128GB",
		"ADDS-128GB", "2TDS-64MB", "JOINT", "ALWAYS-ON"}
	for _, n := range names {
		m, err := ParseName(n)
		if err != nil {
			t.Errorf("ParseName(%q): %v", n, err)
			continue
		}
		if m.IsJoint() || m.Disk == DiskAlwaysOn {
			continue // size-less names
		}
		if got := m.Name(); got != n {
			t.Errorf("round trip %q -> %q", n, got)
		}
	}
}

func TestParseNameRejects(t *testing.T) {
	for _, n := range []string{"", "XXFM-8GB", "2TXX-8GB", "2TFM", "2TFM-", "2TFM-xyz"} {
		if _, err := ParseName(n); err == nil {
			t.Errorf("ParseName(%q) accepted", n)
		}
	}
}

func TestComparisonSet(t *testing.T) {
	sizes := []simtime.Bytes{8 * simtime.GB, 16 * simtime.GB, 32 * simtime.GB, 64 * simtime.GB, 128 * simtime.GB}
	ms := Comparison(128*simtime.GB, sizes)
	// Paper: 14 combination methods + joint + always-on = 16.
	if len(ms) != 16 {
		t.Fatalf("comparison set has %d methods, want 16", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		if names[m.Name()] {
			t.Errorf("duplicate method %s", m.Name())
		}
		names[m.Name()] = true
	}
	for _, want := range []string{"2TFM-8GB", "ADFM-128GB", "2TPD-128GB", "ADDS-128GB", "JOINT", "ALWAYS-ON"} {
		if !names[want] {
			t.Errorf("missing method %s", want)
		}
	}
}

func TestSortMethods(t *testing.T) {
	ms := []Method{
		AlwaysOn(128 * simtime.GB),
		Joint(128 * simtime.GB),
		{Disk: DiskAdaptive, Mem: MemFixedNap, MemBytes: 8 * simtime.GB},
		{Disk: DiskTwoCompetitive, Mem: MemFixedNap, MemBytes: 16 * simtime.GB},
		{Disk: DiskTwoCompetitive, Mem: MemFixedNap, MemBytes: 8 * simtime.GB},
	}
	SortMethods(ms)
	if ms[len(ms)-1].Name() != "ALWAYS-ON" || ms[len(ms)-2].Name() != "JOINT" {
		t.Errorf("tail order wrong: %s, %s", ms[len(ms)-2].Name(), ms[len(ms)-1].Name())
	}
	if ms[0].Name() != "2TFM-8GB" || ms[1].Name() != "2TFM-16GB" {
		t.Errorf("head order wrong: %s, %s", ms[0].Name(), ms[1].Name())
	}
}

func TestBankPolicyMapping(t *testing.T) {
	if MemFixedNap.BankPolicy().String() != "nap" {
		t.Error("FM mapping")
	}
	if MemPowerDown.BankPolicy().String() != "power-down" {
		t.Error("PD mapping")
	}
	if MemDisable.BankPolicy().String() != "disable" {
		t.Error("DS mapping")
	}
	if MemJoint.BankPolicy().String() != "nap" {
		t.Error("joint mapping")
	}
}

func TestAdaptiveTimeoutAdjusts(t *testing.T) {
	d := disk.New(disk.Barracuda(), 0.5)
	a := NewAdaptiveTimeout(d)
	if a.Timeout() != 10 {
		t.Fatalf("start timeout = %v", a.Timeout())
	}
	// Short idle before a spin-up (ratio 10/idle > 0.05): increase.
	a.IdleEnded(50, true)
	if a.Timeout() != 15 {
		t.Errorf("timeout = %v, want 15", a.Timeout())
	}
	// Long idle before a spin-up: decrease.
	a.IdleEnded(1000, true)
	if a.Timeout() != 10 {
		t.Errorf("timeout = %v, want 10", a.Timeout())
	}
	// Idle gaps without spin-down leave it alone.
	a.IdleEnded(3, false)
	if a.Timeout() != 10 {
		t.Errorf("timeout = %v, want 10", a.Timeout())
	}
}

func TestAdaptiveTimeoutBounds(t *testing.T) {
	d := disk.New(disk.Barracuda(), 0.5)
	a := NewAdaptiveTimeout(d)
	for i := 0; i < 10; i++ {
		a.IdleEnded(20, true) // always "too short" → increase
	}
	if a.Timeout() != a.Max {
		t.Errorf("timeout = %v, want cap %v", a.Timeout(), a.Max)
	}
	for i := 0; i < 10; i++ {
		a.IdleEnded(1e6, true)
	}
	if a.Timeout() != a.Min {
		t.Errorf("timeout = %v, want floor %v", a.Timeout(), a.Min)
	}
}

func TestAdaptiveTimeoutDrivesDisk(t *testing.T) {
	d := disk.New(disk.Barracuda(), 0.5)
	NewAdaptiveTimeout(d)
	if d.Timeout() != 10 {
		t.Fatalf("disk timeout = %v, want 10", d.Timeout())
	}
	// End-to-end: a long gap spins the disk down, the observer fires, and
	// the new timeout lands on the disk.
	d.Submit(0, simtime.MB)
	d.Submit(100, simtime.MB) // 100 s idle; ratio 10/100 > 0.05 → increase
	if d.Timeout() != 15 {
		t.Errorf("disk timeout after spin-up = %v, want 15", d.Timeout())
	}
}

func TestKindStrings(t *testing.T) {
	if DiskTwoCompetitive.String() != "2T" || DiskAdaptive.String() != "AD" ||
		DiskAlwaysOn.String() != "ON" || DiskJoint.String() != "JT" {
		t.Error("disk kind strings")
	}
	if MemFixedNap.String() != "FM" || MemPowerDown.String() != "PD" ||
		MemDisable.String() != "DS" || MemJoint.String() != "JT" {
		t.Error("mem kind strings")
	}
	if DiskKind(99).String() != "??" || MemKind(99).String() != "??" {
		t.Error("unknown kind strings")
	}
}
