package policy

import (
	"math"

	"jointpm/internal/disk"
	"jointpm/internal/simtime"
)

// PredictiveShutdown implements the classic exponential-average
// predictive disk power management (Hwang & Wu's adaptive prediction, the
// family of policies the paper's Section II-A surveys alongside the
// timeout schemes): instead of waiting out a timeout, it predicts the
// next idle interval from an exponentially weighted average of past
// intervals and spins down *immediately* when the prediction exceeds the
// break-even time.
//
//	I_{k+1} = a·i_k + (1−a)·I_k
//
// Prediction misses are self-correcting: gaps that were predicted long
// but ended short raise the average's error and subsequent predictions
// shrink. The policy is exposed as the "EA" disk kind, an extension
// beyond the paper's 16-method comparison.
type PredictiveShutdown struct {
	d *disk.Disk

	// Alpha is the smoothing weight on the most recent interval.
	Alpha float64

	predicted float64
	seen      bool
}

// NewPredictiveShutdown attaches the policy to the disk with the
// conventional a = 0.5 weighting.
func NewPredictiveShutdown(d *disk.Disk) *PredictiveShutdown {
	p := &PredictiveShutdown{d: d, Alpha: 0.5}
	// Until the first idle interval is observed, stay conservative: never
	// spin down.
	d.SetTimeout(d.Now(), simtime.Seconds(math.Inf(1)))
	d.SetObserver(p)
	return p
}

// Predicted returns the current idle-interval prediction.
func (p *PredictiveShutdown) Predicted() simtime.Seconds {
	return simtime.Seconds(p.predicted)
}

// IdleEnded implements disk.Observer: fold the observed interval into the
// exponential average and arm the next gap's decision — timeout 0 when
// the prediction clears the break-even time, +Inf otherwise.
func (p *PredictiveShutdown) IdleEnded(idle simtime.Seconds, spunDown bool) {
	if !p.seen {
		p.predicted = float64(idle)
		p.seen = true
	} else {
		p.predicted = p.Alpha*float64(idle) + (1-p.Alpha)*p.predicted
	}
	to := simtime.Seconds(math.Inf(1))
	if p.predicted > float64(p.d.Spec().BreakEven()) {
		to = 0
	}
	p.d.SetTimeout(p.d.Now(), to)
}
