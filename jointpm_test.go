package jointpm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func tinyWorkload(t testing.TB, seed int64) *Trace {
	t.Helper()
	tr, err := GenerateWorkload(WorkloadConfig{
		DataSetBytes: 32 * MB,
		PageSize:     16 * KB,
		Rate:         200 * float64(KB),
		Popularity:   0.1,
		Duration:     1800,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFacadeEndToEnd(t *testing.T) {
	tr := tinyWorkload(t, 1)

	memSpec := RDRAM(MB)
	memSpec.NapPowerPerMB *= 1024 // paper-like memory:disk ratio at toy size

	run := func(m Method) *SimResult {
		res, err := Run(SimConfig{
			Trace:        tr,
			Method:       m,
			InstalledMem: 128 * MB,
			BankSize:     MB,
			MemSpec:      memSpec,
			Period:       5 * Minute,
			Joint:        &JointParams{DelayCap: 0.02},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	baseline := run(AlwaysOnMethod(128 * MB))
	joint := run(JointMethod(128 * MB))
	if joint.TotalEnergy() >= baseline.TotalEnergy() {
		t.Errorf("joint %v not below always-on %v", joint.TotalEnergy(), baseline.TotalEnergy())
	}
	if joint.CacheAccesses != baseline.CacheAccesses {
		t.Errorf("cache accesses depend on method: %d vs %d",
			joint.CacheAccesses, baseline.CacheAccesses)
	}
}

// TestEngineMatchesStackPrediction is the cross-module inclusion
// invariant the whole joint method rests on: the miss count the engine
// observes with a fixed LRU cache of m pages must equal the prediction
// the extended LRU list makes by replaying the same reference stream —
// for every m. (The paper's Section IV-B correctness argument.)
func TestEngineMatchesStackPrediction(t *testing.T) {
	tr := tinyWorkload(t, 3)
	const pageSize = 16 * KB
	const bank = MB
	bankPages := int(bank / pageSize)

	stack := NewStackSim(1 << 20)
	curve := NewMissCurve(bankPages)
	for _, r := range tr.Requests {
		for k := int32(0); k < r.Pages; k++ {
			curve.Add(stack.Reference(r.FirstPage + int64(k)))
		}
	}

	for _, banks := range []int{1, 2, 8, 32, 128} {
		m := Method{MemBytes: Bytes(banks) * bank}
		m2, err := ParseMethod("2TFM-" + m.MemBytes.String())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(SimConfig{
			Trace:        tr,
			Method:       m2,
			InstalledMem: 128 * MB,
			BankSize:     bank,
			Period:       5 * Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := curve.Misses(int64(banks) * int64(bankPages))
		if res.DiskAccesses != want {
			t.Errorf("%d banks: engine saw %d misses, stack predicts %d",
				banks, res.DiskAccesses, want)
		}
	}
}

// TestQuickMissMonotonicity: across random workloads, a bigger fixed
// cache never misses more (LRU inclusion at the whole-engine level).
func TestQuickMissMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		tr, err := GenerateWorkload(WorkloadConfig{
			DataSetBytes: 16 * MB,
			PageSize:     16 * KB,
			Rate:         100 * float64(KB),
			Popularity:   0.2,
			Duration:     600,
			Seed:         seed,
		})
		if err != nil {
			return false
		}
		prev := int64(-1)
		for _, banks := range []Bytes{32, 16, 8, 4, 2, 1} { // descending size
			res, err := Run(SimConfig{
				Trace:        tr,
				Method:       Method{MemBytes: banks * MB},
				InstalledMem: 32 * MB,
				BankSize:     MB,
				Period:       5 * Minute,
			})
			if err != nil {
				return false
			}
			if prev >= 0 && res.DiskAccesses < prev {
				return false
			}
			prev = res.DiskAccesses
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRoundTripViaFacade(t *testing.T) {
	tr := tinyWorkload(t, 5)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(tr.Requests) || got.DataSetPages != tr.DataSetPages {
		t.Error("round trip mangled trace")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if Barracuda().BreakEven() <= 0 {
		t.Error("Barracuda break-even")
	}
	if RDRAM(16*MB).NapPower() <= 0 {
		t.Error("RDRAM nap power")
	}
	ms := ComparisonMethods(128*GB, []Bytes{8 * GB, 16 * GB})
	if len(ms) != 10 { // 2 disks × (2 FM + PD + DS) + joint + always-on
		t.Errorf("comparison set = %d", len(ms))
	}
	if len(ExperimentIDs()) != 14 {
		t.Errorf("experiments = %d", len(ExperimentIDs()))
	}
	if _, err := ExperimentByID("fig7"); err != nil {
		t.Error(err)
	}
	if ColdDepth != -1 {
		t.Error("ColdDepth changed")
	}
	d, err := FitPareto([]float64{1, 2, 4, 8, 16}, 0.5)
	if err != nil || !d.Valid() {
		t.Errorf("FitPareto: %v %v", d, err)
	}
	p := DefaultJointParams(64*KB, 16*MB, 8192, Barracuda(), RDRAM(16*MB))
	if _, err := NewJointManager(p); err != nil {
		t.Error(err)
	}
	if got := DiskPMPowerModel(ParetoDist{Alpha: 1.5, Beta: 5}, 10, 20, 600, Barracuda()); got <= 0 {
		t.Errorf("DiskPMPowerModel = %g", got)
	}
	if PopularityOf(tinyWorkload(t, 9)) <= 0 {
		t.Error("PopularityOf")
	}
	if NewSynthesizer(1) == nil {
		t.Error("NewSynthesizer")
	}
	if PaperScale(7200).Name != "paper" || QuickScale(600).Name != "quick" {
		t.Error("scale presets")
	}
}

func TestFacadeExtensions(t *testing.T) {
	tr := tinyWorkload(t, 21)

	// Workload analysis and modulation.
	st := AnalyzeTrace(tr)
	if st.Requests != len(tr.Requests) || st.Popularity <= 0 {
		t.Error("AnalyzeTrace")
	}
	mod := ModulateTrace(tr, Diurnal{CycleLength: tr.Duration, Amplitude: 0.5})
	if len(mod.Requests) != len(tr.Requests) {
		t.Error("ModulateTrace")
	}
	if (OnOff{OnSpan: 1, OffSpan: 1, OnFactor: 2, OffFactor: 0.5}).Factor(0.5) != 2 {
		t.Error("OnOff factor")
	}

	// Zoned disk model through the engine.
	z := BarracudaZoned()
	res, err := Run(SimConfig{
		Trace:        tr,
		Method:       AlwaysOnMethod(64 * MB),
		InstalledMem: 64 * MB,
		BankSize:     MB,
		Period:       5 * Minute,
		Zoned:        &z,
	})
	if err != nil || res.DiskAccesses == 0 {
		t.Fatalf("zoned run: %v", err)
	}

	// Multi-disk with the PB-LRU-style partitioning.
	ares, err := RunArray(ArrayConfig{
		Trace:        tr,
		Disks:        2,
		Layout:       LayoutHotCold,
		Method:       ArrayPartitioned,
		InstalledMem: 64 * MB,
		BankSize:     MB,
		Period:       5 * Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ares.Partitions) != 2 {
		t.Errorf("partitions = %v", ares.Partitions)
	}

	// DRPM.
	spec := DeriveDRPMLevels(Barracuda(), 12000, 3)
	dres, err := RunDRPM(DRPMConfig{
		Trace:    tr,
		Spec:     spec,
		Policy:   DRPMAdaptive,
		MemBytes: 64 * MB,
		BankSize: MB,
		Period:   5 * Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dres.TotalEnergy() <= 0 {
		t.Error("DRPM energy")
	}
	if DRPMFullSpeed == DRPMAdaptive {
		t.Error("policy constants collide")
	}

	// EA method through the engine.
	eares, err := Run(SimConfig{
		Trace:        tr,
		Method:       Method{MemBytes: 64 * MB, Disk: mustParse(t, "EAFM-64MB").Disk},
		InstalledMem: 64 * MB,
		BankSize:     MB,
		Period:       5 * Minute,
	})
	if err != nil || eares.CacheAccesses == 0 {
		t.Fatalf("EA run: %v", err)
	}
}

func mustParse(t *testing.T, name string) Method {
	t.Helper()
	m, err := ParseMethod(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
