// Command pmsim replays one trace through the simulator under a chosen
// power-management method and prints the metric row the paper's figures
// are built from: energy split, latency, utilization, and long-latency
// rate. Combine with tracegen to script custom studies.
//
// Usage:
//
//	pmsim -trace base.trc -method JOINT
//	pmsim -trace base.trc -method 2TFM-16GB -mem 128GB -bank 16MB
//	pmsim -trace base.trc -method ADPD-128GB -periods
//	pmsim -trace base.trc -metrics-addr 127.0.0.1:8080 -decision-trace joint.jsonl
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"jointpm/internal/core"
	"jointpm/internal/fault"
	"jointpm/internal/obs"
	"jointpm/internal/policy"
	"jointpm/internal/profiling"
	"jointpm/internal/shutdown"
	"jointpm/internal/sim"
	"jointpm/internal/simtime"
	"jointpm/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		tracePath     = flag.String("trace", "", "binary trace file (required)")
		method        = flag.String("method", "JOINT", "method name, e.g. JOINT, ALWAYS-ON, 2TFM-16GB, ADPD-128GB")
		memTotal      = flag.String("mem", "128GB", "installed physical memory")
		bank          = flag.String("bank", "16MB", "memory bank size")
		period        = flag.Float64("period", 600, "adaptation period in seconds")
		warmup        = flag.Float64("warmup", 0, "warmup seconds excluded from metrics")
		delayCap      = flag.Float64("delaycap", 0.001, "joint delayed-request ratio cap D")
		periods       = flag.Bool("periods", false, "also print per-period rows")
		metricsAddr   = flag.String("metrics-addr", "", "serve /metrics and /debug/vars on this address while running")
		metricsLinger = flag.Duration("metrics-linger", 0, "keep serving metrics this long after the run finishes")
		decTrace      = flag.String("decision-trace", "", "append one JSON line per joint decision to this file")
		decideMode    = flag.String("decide", "incremental", "joint observation path: batch or incremental (bit-identical decisions)")
		refitDrift    = flag.Float64("refit-drift", 0, "steady-state refit drift-hold fraction (0: full slate search every period; 0.05 recommended)")
		speedLevels   = flag.Int("speed-levels", 0, "derive a DRPM speed ladder of N levels from the disk spec; the joint slate prices every candidate at every level (0 or 1: single-speed)")
		faultsPath    = flag.String("faults", "", "JSON fault plan: run under injected faults and check invariants")
		faultSeed     = flag.Uint64("fault-seed", 1, "seed for the -faults injector")
		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Cleanups (journal flush, profile stop, metrics server close) go on
	// a shutdown stack instead of plain defers, so a SIGINT/SIGTERM mid-
	// run or mid-linger still flushes everything before exiting 128+sig.
	shut := shutdown.NewStack("pmsim")
	defer func() {
		if cerr := shut.Run(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	stopSignals := shut.HandleSignals()
	defer stopSignals()

	f, err := os.Open(*tracePath)
	if err != nil {
		return fmt.Errorf("opening -trace: %w", err)
	}
	tr, err := trace.ReadBinary(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("reading -trace %s: %w", *tracePath, err)
	}

	m, err := policy.ParseName(*method)
	if err != nil {
		return fmt.Errorf("parsing -method: %w", err)
	}
	installed, err := simtime.ParseBytes(*memTotal)
	if err != nil {
		return fmt.Errorf("parsing -mem: %w", err)
	}
	bankSize, err := simtime.ParseBytes(*bank)
	if err != nil {
		return fmt.Errorf("parsing -bank: %w", err)
	}
	if m.MemBytes == 0 {
		m.MemBytes = installed
	}

	// Observability: a registry when an exporter wants it, a journal sink
	// when -decision-trace names a file. The sink is flushed on every exit
	// path, success or failure, mirroring the profile flush below.
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		obs.Publish("jointpm", reg)
		srv, addr, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("serving -metrics-addr %s: %w", *metricsAddr, err)
		}
		fmt.Fprintf(os.Stderr, "pmsim: metrics on http://%s/metrics\n", addr)
		shut.Defer(srv.Close)
	}
	var sink *obs.DecisionSink
	if *decTrace != "" {
		sink, err = obs.NewFileSink(*decTrace, obs.DefaultSinkDepth)
		if err != nil {
			return fmt.Errorf("opening -decision-trace: %w", err)
		}
		shut.Defer(func() error {
			if cerr := sink.Close(); cerr != nil {
				return fmt.Errorf("flushing -decision-trace %s: %w", *decTrace, cerr)
			}
			return nil
		})
	}

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return fmt.Errorf("starting profiles: %w", err)
	}
	shut.Defer(func() error {
		if perr := stopProfiles(); perr != nil {
			return fmt.Errorf("flushing profiles: %w", perr)
		}
		return nil
	})

	mode, err := core.ParseDecideMode(*decideMode)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Trace:          tr,
		Method:         m,
		Decide:         mode,
		RefitDriftFrac: *refitDrift,
		SpeedLevels:    *speedLevels,
		InstalledMem:   installed,
		BankSize:       bankSize,
		Period:         simtime.Seconds(*period),
		Warmup:         simtime.Seconds(*warmup),
		Joint:          &core.Params{DelayCap: *delayCap},
		Metrics:        reg,
		DecisionTrace:  sink,
	}
	var (
		res *sim.Result
		rep *fault.Report
	)
	if *faultsPath != "" {
		// Faulted run: the invariant harness transforms the trace, wires
		// the injector, and checks the safety invariants. It meters the
		// run through its own registry so counter snapshots are per-seed.
		plan, err := fault.LoadPlan(*faultsPath)
		if err != nil {
			return err
		}
		rep, err = fault.CheckRun(cfg, plan, *faultSeed)
		if err != nil {
			return fmt.Errorf("simulating %s under -faults: %w", m.Name(), err)
		}
		res = rep.Result
	} else {
		res, err = sim.Run(cfg)
		if err != nil {
			return fmt.Errorf("simulating %s: %w", m.Name(), err)
		}
	}

	fmt.Printf("method           %s\n", m.Name())
	fmt.Printf("duration         %v (metered)\n", res.Duration)
	fmt.Printf("client requests  %d\n", res.ClientRequests)
	fmt.Printf("cache accesses   %d (page refs)\n", res.CacheAccesses)
	fmt.Printf("disk accesses    %d (page misses), %d coalesced requests\n", res.DiskAccesses, res.DiskRequests)
	fmt.Printf("disk energy      %v (dyn %v, on %v, floor %v, transitions %v)\n",
		res.DiskEnergy.Total(), res.DiskEnergy.Dynamic, res.DiskEnergy.StaticOn,
		res.DiskEnergy.Floor, res.DiskEnergy.Transition)
	fmt.Printf("memory energy    %v (static %v, dyn %v, transitions %v)\n",
		res.MemEnergy.Total(), res.MemEnergy.Static, res.MemEnergy.Dynamic, res.MemEnergy.Transition)
	fmt.Printf("total energy     %v (avg %.3g W)\n", res.TotalEnergy(),
		float64(res.TotalEnergy())/float64(res.Duration))
	fmt.Printf("mean latency     %v\n", res.MeanLatency())
	fmt.Printf("utilization      %.2f%%\n", res.Utilization*100)
	fmt.Printf("long latency     %d requests (%.3f/s)\n", res.Delayed, res.DelayedPerSecond())

	if rep != nil {
		fmt.Printf("faults injected  %d (spin-up retries %d, latency spikes %d, bank failures %d)\n",
			rep.FaultsInjected, rep.SpinUpRetries, rep.LatencySpikes, rep.BankFailures)
		fmt.Printf("degradation      %d degenerate fits, %d fallback decisions\n",
			rep.FitDegenerate, rep.FallbackDecisions)
		if len(rep.Violations) > 0 {
			for _, v := range rep.Violations {
				fmt.Fprintln(os.Stderr, "pmsim: invariant violated:", v)
			}
			return fmt.Errorf("%d invariant violations under -faults %s", len(rep.Violations), *faultsPath)
		}
		fmt.Printf("invariants       ok\n")
	}

	if *periods {
		fmt.Println("\nperiod  accesses  misses  requests  util%   meanidle  banks  timeout  delayed")
		for i, p := range res.Periods {
			to := "inf"
			if !math.IsInf(float64(p.Timeout), 1) {
				to = p.Timeout.String()
			}
			fmt.Printf("%6d  %8d  %6d  %8d  %5.2f  %8v  %5d  %7s  %7d\n",
				i+1, p.CacheAccesses, p.DiskAccesses, p.DiskRequests,
				p.Utilization*100, p.MeanIdle, p.Banks, to, p.Delayed)
		}
	}

	// Hold the exporter open so a scraper (CI's smoke curl, a manual
	// browser tab) can read the final counters after a short run.
	if *metricsAddr != "" && *metricsLinger > 0 {
		fmt.Fprintf(os.Stderr, "pmsim: lingering %v for scrapes\n", *metricsLinger)
		time.Sleep(*metricsLinger)
	}
	return nil
}
