package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"jointpm/internal/simtime"
	"jointpm/internal/trace"
	"jointpm/internal/workload"
)

// TestMain lets this test binary impersonate pmsim: when the marker env
// var is set, it runs main() on its arguments instead of the test suite.
// The interrupt test re-execs itself this way, so no separate binary
// build is needed.
func TestMain(m *testing.M) {
	if os.Getenv("PMSIM_BE_PMSIM") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func writeTestTrace(t *testing.T, path string) {
	t.Helper()
	tr, err := workload.Generate(workload.Config{
		DataSetBytes: 64 * simtime.MB,
		PageSize:     64 * simtime.KB,
		Rate:         0.5 * float64(simtime.MB),
		Popularity:   0.1,
		Duration:     1800,
		Classes:      workload.SPECWeb99Classes(64),
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
}

// TestInterruptFlushesJournal kills a child pmsim with SIGTERM while it
// lingers after its run and asserts the shutdown path did its job: exit
// status 143, and a decision-trace journal whose last record is a
// complete JSON line.
func TestInterruptFlushesJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs a full pmsim run")
	}
	dir := t.TempDir()
	trPath := filepath.Join(dir, "w.trc")
	journal := filepath.Join(dir, "joint.jsonl")
	writeTestTrace(t, trPath)

	cmd := exec.Command(os.Args[0],
		"-trace", trPath, "-method", "JOINT",
		"-mem", "128MB", "-bank", "1MB", "-period", "120",
		"-decision-trace", journal,
		"-metrics-addr", "127.0.0.1:0", "-metrics-linger", "1m")
	cmd.Env = append(os.Environ(), "PMSIM_BE_PMSIM=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the linger line: the run is finished, records are queued
	// or buffered, and only the interrupt path can flush them now.
	lingering := make(chan error, 1)
	go func() {
		buf := make([]byte, 4096)
		var seen strings.Builder
		for {
			n, err := stderr.Read(buf)
			seen.Write(buf[:n])
			if strings.Contains(seen.String(), "lingering") {
				lingering <- nil
				return
			}
			if err != nil {
				lingering <- errors.New("child exited before lingering: " + seen.String())
				return
			}
		}
	}()
	select {
	case err := <-lingering:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("child never reached the linger phase")
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("Wait = %v, want non-zero exit", err)
	}
	if code := exitErr.ExitCode(); code != 143 {
		t.Fatalf("exit code %d, want 143 (128+SIGTERM)", code)
	}

	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.TrimSuffix(string(b), "\n")
	if body == "" {
		t.Fatal("journal empty after interrupt")
	}
	if strings.HasSuffix(string(b), "\n") == false {
		t.Fatalf("journal does not end with a newline: %q", b[len(b)-64:])
	}
	lines := strings.Split(body, "\n")
	var rec struct {
		Seq int64 `json:"seq"`
	}
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %d/%d not complete JSON: %v\n%q", i+1, len(lines), err, line)
		}
	}
	if rec.Seq != int64(len(lines)) {
		t.Fatalf("last record seq %d, want %d (no records lost before it)", rec.Seq, len(lines))
	}
}
