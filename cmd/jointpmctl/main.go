// Command jointpmctl queries a running jointpmd's debug endpoints and
// renders them for a terminal: a one-screen status table (the default),
// or the per-period flight records.
//
// Usage:
//
//	jointpmctl -addr 127.0.0.1:7071            # status table
//	jointpmctl -addr 127.0.0.1:7071 status
//	jointpmctl -addr 127.0.0.1:7071 periods -disk d0 -n 8
//	jointpmctl -addr 127.0.0.1:7071 periods -json
//	jointpmctl -addr 127.0.0.1:7071 fleet
//
// -addr names the daemon's -metrics-addr listener; every command is a
// plain GET (/debug/status, /debug/periods, /debug/fleet), so curl
// works too — jointpmctl only adds the rendering. "fleet" reports the
// power-cap coordinator's latest budget solve and fails with the
// daemon's 404 when jointpmd runs without -power-cap-w.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"jointpm/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jointpmctl:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("jointpmctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7071", "jointpmd -metrics-addr to query")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmd := "status"
	rest := fs.Args()
	if len(rest) > 0 {
		cmd, rest = rest[0], rest[1:]
	}
	switch cmd {
	case "status":
		var st serve.Status
		if err := getJSON(*addr, "/debug/status", &st); err != nil {
			return err
		}
		return renderStatus(w, *addr, st)
	case "fleet":
		ffs := flag.NewFlagSet("jointpmctl fleet", flag.ContinueOnError)
		raw := ffs.Bool("json", false, "emit the raw JSON response")
		if err := ffs.Parse(rest); err != nil {
			return err
		}
		if *raw {
			return getRaw(*addr, "/debug/fleet", w)
		}
		var fst serve.FleetStatus
		if err := getJSON(*addr, "/debug/fleet", &fst); err != nil {
			return err
		}
		return renderFleet(w, fst)
	case "periods":
		pfs := flag.NewFlagSet("jointpmctl periods", flag.ContinueOnError)
		disk := pfs.String("disk", "", "restrict to one disk")
		n := pfs.Int("n", 0, "newest N records per disk (0: whole ring)")
		raw := pfs.Bool("json", false, "emit the raw JSON response")
		if err := pfs.Parse(rest); err != nil {
			return err
		}
		path := fmt.Sprintf("/debug/periods?disk=%s&n=%d", *disk, *n)
		if *raw {
			return getRaw(*addr, path, w)
		}
		var pr serve.PeriodsResponse
		if err := getJSON(*addr, path, &pr); err != nil {
			return err
		}
		return renderPeriods(w, pr)
	default:
		return fmt.Errorf("unknown command %q (want status, periods, or fleet)", cmd)
	}
}

func getJSON(addr, path string, v any) error {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("GET %s: decoding: %w", path, err)
	}
	return nil
}

func getRaw(addr, path string, w io.Writer) error {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}
