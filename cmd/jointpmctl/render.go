package main

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"jointpm/internal/obs"
	"jointpm/internal/serve"
)

// renderStatus writes the one-screen daemon summary: a header line, one
// row per shard (banks, timeout, Decide quantiles, energy split), and
// the fallback/fault counters.
func renderStatus(w io.Writer, addr string, st serve.Status) error {
	flight := "off"
	if st.FlightDepth > 0 {
		flight = fmt.Sprintf("%d periods", st.FlightDepth)
	}
	fmt.Fprintf(w, "jointpmd %s  up %.0fs  lag %.2fs  ingest %.0f refs/s  decide %s  period %.0fs  flight %s\n\n",
		addr, st.UptimeS, st.StreamLagS, st.RefsPerSec, st.DecideMode, st.PeriodS, flight)

	// The fleet columns only appear when the daemon reports a power cap
	// (any shard carrying budget/actual watts), so an uncapped daemon's
	// table renders byte-identically to pre-fleet builds.
	capped := false
	for _, sh := range st.Shards {
		if sh.BudgetW > 0 || sh.PowerW > 0 {
			capped = true
			break
		}
	}
	// Likewise the SPEED column only appears on multi-speed daemons
	// (the status reports its DRPM ladder size).
	multiSpeed := st.SpeedLevels > 1
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	header := "DISK\tPERIODS\tCONSUMED\tREFS\tRING\tBANKS\tTIMEOUT\tFALLBK\tDECIDE p50/p99\tMEM J\tDISK J\tDELAY s"
	if multiSpeed {
		header += "\tSPEED"
	}
	if capped {
		header += "\tBUDGET W\tACTUAL W"
	}
	fmt.Fprintln(tw, header)
	for _, sh := range st.Shards {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%d\t%s\t%d\t%s / %s\t%.1f\t%.1f\t%.2f",
			sh.Disk, sh.Periods, sh.Consumed, sh.RefsIngested, formatRing(sh.RingLen, sh.RingCap),
			sh.Banks, formatTimeout(sh.TimeoutS),
			sh.Fallbacks, formatMs(sh.DecideP50Ms), formatMs(sh.DecideP99Ms),
			sh.Energy.MemJ(), sh.Energy.DiskJ(), sh.Energy.DelayS)
		if multiSpeed {
			fmt.Fprintf(tw, "\t%d/%d", sh.SpeedLevel, st.SpeedLevels-1)
		}
		if capped {
			fmt.Fprintf(tw, "\t%s\t%s", formatWatts(sh.BudgetW), formatWatts(sh.PowerW))
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if line := counterLine(st.Counters); line != "" {
		fmt.Fprintf(w, "\n%s\n", line)
	}
	return nil
}

// counterLine selects the health counters worth one line of screen:
// every fault.* counter plus the daemon's degradation counters.
func counterLine(counters []obs.NamedInt) string {
	keep := map[string]bool{
		"serve.fallbacks":         true,
		"serve.checkpoint_errors": true,
		"serve.restores":          true,
	}
	var parts []string
	for _, c := range counters {
		if keep[c.Name] || strings.HasPrefix(c.Name, "fault.") {
			parts = append(parts, fmt.Sprintf("%s=%d", c.Name, c.Value))
		}
	}
	sort.Strings(parts)
	if parts == nil {
		return ""
	}
	return "counters: " + strings.Join(parts, "  ")
}

// renderPeriods writes the flight records, one row per period, disks in
// name order, oldest first.
func renderPeriods(w io.Writer, pr serve.PeriodsResponse) error {
	names := make([]string, 0, len(pr.Disks))
	for name := range pr.Disks {
		names = append(names, name)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "DISK\tPERIOD\tSPAN s\tREFS\tINGEST ns/ref\tDECIDE\tEMIT\tCKPT\tBANKS\tTIMEOUT\tENERGY J\tFLAGS")
	for _, name := range names {
		for _, r := range pr.Disks[name] {
			span := float64(r.EndS) - float64(r.StartS)
			flags := "-"
			var fl []string
			if r.Warmup {
				fl = append(fl, "warmup")
			}
			if r.Fallback {
				fl = append(fl, "fallback")
			}
			if fl != nil {
				flags = strings.Join(fl, ",")
			}
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%d\t%.0f\t%s\t%s\t%s\t%d\t%s\t%.1f\t%s\n",
				name, r.Period, span, r.Refs, r.IngestNsPerRef(),
				formatNs(r.DecideNs), formatNs(r.EmitNs), formatNs(r.CheckpointNs),
				r.Banks, formatTimeout(r.TimeoutS), r.Energy.TotalJ(), flags)
		}
	}
	return tw.Flush()
}

// renderFleet writes the coordinator's latest solve: the cap header and
// one row per shard budget, stale rows flagged.
func renderFleet(w io.Writer, st serve.FleetStatus) error {
	fmt.Fprintf(w, "power cap %.2f W  floor %.2f W/shard  epoch %d\n\n",
		st.PowerCapW, st.FloorW, st.Epoch)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "DISK\tBUDGET W\tDEMAND W\tFLOOR W\tSTALE")
	for _, a := range st.Assignments {
		stale := "-"
		if a.Stale {
			stale = "stale"
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%s\n", a.Disk, a.BudgetW, a.DemandW, a.FloorW, stale)
	}
	return tw.Flush()
}

// formatWatts renders a fleet wattage; "-" when the field is absent
// (shard not yet budgeted).
func formatWatts(w float64) string {
	if w == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", w)
}

// formatRing renders ring occupancy as buffered/capacity; "-" when no
// stream is attached (capacity 0).
func formatRing(n, capacity int) string {
	if capacity == 0 {
		return "-"
	}
	return fmt.Sprintf("%d/%d", n, capacity)
}

func formatTimeout(t obs.Float) string {
	if math.IsInf(float64(t), 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2fs", float64(t))
}

// formatMs renders a millisecond latency with enough precision for
// sub-millisecond decides.
func formatMs(ms float64) string {
	return fmt.Sprintf("%.2fms", ms)
}

// formatNs renders a nanosecond span compactly (µs past 10µs, ms past
// 10ms); 0 renders as "-" (span not measured).
func formatNs(ns int64) string {
	switch {
	case ns == 0:
		return "-"
	case ns >= 10_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 10_000:
		return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
