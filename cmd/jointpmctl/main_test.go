package main

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"jointpm/internal/fleet"
	"jointpm/internal/obs"
	"jointpm/internal/obs/flight"
	"jointpm/internal/serve"
)

// TestRenderStatusGolden pins the one-screen status table byte for
// byte: header line, per-shard rows (timeout formatting including the
// +Inf "spin-down disabled" case), and the counter line.
func TestRenderStatusGolden(t *testing.T) {
	st := serve.Status{
		UptimeS:      632.4,
		StreamLagS:   0.418,
		RefsIngested: 419552,
		RefsPerSec:   663.4,
		DecideMode:   "incremental",
		PeriodS:      120,
		FlightDepth:  64,
		Shards: []serve.ShardStatus{
			{
				Disk: "sda", Periods: 15, Consumed: 52340, Banks: 80,
				TimeoutS: 11.7, Fallbacks: 0,
				RefsIngested: 418720, RingLen: 1024, RingCap: 16384,
				DecideP50Ms: 0.41, DecideP99Ms: 1.27, FlightTotal: 15,
				Energy: flight.Ledger{MemNapJ: 1234.56, DiskActiveJ: 301.2, DiskSpinJ: 44.1, DelayS: 12.6},
			},
			{
				Disk: "sdb", Periods: 3, Consumed: 104, Banks: 128,
				TimeoutS: obs.Float(math.Inf(1)), Fallbacks: 2,
				RefsIngested: 832,
				DecideP50Ms:  0.05, DecideP99Ms: 0.05, FlightTotal: 3,
				Energy: flight.Ledger{MemNapJ: 250, DiskActiveJ: 75.5},
			},
		},
		Counters: []obs.NamedInt{
			{Name: "core.decide_calls", Value: 18},
			{Name: "fault.disk.trips", Value: 1},
			{Name: "serve.fallbacks", Value: 2},
		},
	}
	var buf bytes.Buffer
	if err := renderStatus(&buf, "127.0.0.1:7071", st); err != nil {
		t.Fatal(err)
	}
	want := "jointpmd 127.0.0.1:7071  up 632s  lag 0.42s  ingest 663 refs/s  decide incremental  period 120s  flight 64 periods\n" +
		"\n" +
		"DISK  PERIODS  CONSUMED  REFS    RING        BANKS  TIMEOUT  FALLBK  DECIDE p50/p99   MEM J   DISK J  DELAY s\n" +
		"sda   15       52340     418720  1024/16384  80     11.70s   0       0.41ms / 1.27ms  1234.6  345.3   12.60\n" +
		"sdb   3        104       832     -           128    inf      2       0.05ms / 0.05ms  250.0   75.5    0.00\n" +
		"\n" +
		"counters: fault.disk.trips=1  serve.fallbacks=2\n"
	if got := buf.String(); got != want {
		t.Errorf("status table mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderPeriodsGolden pins the flight-record table: disks in name
// order, span formatting, per-ref ingest cost, and the flags column.
func TestRenderPeriodsGolden(t *testing.T) {
	pr := serve.PeriodsResponse{
		FlightDepth: 8,
		Disks: map[string][]flight.PeriodRecord{
			"sdb": {
				{
					Disk: "sdb", Period: 1, Mode: "incremental", StartS: 0, EndS: 120,
					Refs: 0, Banks: 128, TimeoutS: obs.Float(math.Inf(1)), Warmup: true,
					Energy: flight.Ledger{MemNapJ: 100},
				},
			},
			"sda": {
				{
					Disk: "sda", Period: 7, Mode: "incremental", StartS: 720, EndS: 840,
					Refs: 4000, IngestNs: 1_200_000, DecideNs: 410_000, EmitNs: 9_100,
					CheckpointNs: 12_000_000, Banks: 80, TimeoutS: 11.7,
					Energy: flight.Ledger{MemNapJ: 80.25, DiskActiveJ: 20.5},
				},
				{
					Disk: "sda", Period: 8, Mode: "incremental", StartS: 840, EndS: 960,
					Refs: 2000, IngestNs: 640_000, DecideNs: 380_000, EmitNs: 8_000,
					Banks: 80, TimeoutS: 11.7, Fallback: true,
					Energy: flight.Ledger{MemNapJ: 80.25},
				},
			},
		},
	}
	var buf bytes.Buffer
	if err := renderPeriods(&buf, pr); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	wantExact := "DISK  PERIOD  SPAN s  REFS  INGEST ns/ref  DECIDE  EMIT    CKPT    BANKS  TIMEOUT  ENERGY J  FLAGS\n" +
		"sda   7       120     4000  300            410µs   9100ns  12.0ms  80     11.70s   100.8     -\n" +
		"sda   8       120     2000  320            380µs   8000ns  -       80     11.70s   80.2      fallback\n" +
		"sdb   1       120     0     0              -       -       -       128    inf      100.0     warmup\n"
	if got != wantExact {
		t.Errorf("periods table mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, wantExact)
	}
}

// TestRenderStatusFleetGolden pins the capped variant of the status
// table: when any shard reports fleet watts, the BUDGET W / ACTUAL W
// columns appear, with "-" for shards not yet budgeted.
func TestRenderStatusFleetGolden(t *testing.T) {
	st := serve.Status{
		UptimeS:     240, // lag/rate columns zero-valued for brevity
		DecideMode:  "incremental",
		PeriodS:     120,
		FlightDepth: 64,
		Shards: []serve.ShardStatus{
			{
				Disk: "sda", Periods: 4, Consumed: 900, Banks: 80,
				TimeoutS: 11.7, RefsIngested: 7200,
				DecideP50Ms: 0.41, DecideP99Ms: 1.27,
				Energy:  flight.Ledger{MemNapJ: 100, DiskActiveJ: 20},
				BudgetW: 9.25, PowerW: 7.5,
			},
			{
				Disk: "sdb", Periods: 0, Consumed: 0, Banks: 128,
				TimeoutS: 11.7,
				// Not yet budgeted: both fleet columns render "-".
			},
		},
	}
	var buf bytes.Buffer
	if err := renderStatus(&buf, "127.0.0.1:7071", st); err != nil {
		t.Fatal(err)
	}
	want := "jointpmd 127.0.0.1:7071  up 240s  lag 0.00s  ingest 0 refs/s  decide incremental  period 120s  flight 64 periods\n" +
		"\n" +
		"DISK  PERIODS  CONSUMED  REFS  RING  BANKS  TIMEOUT  FALLBK  DECIDE p50/p99   MEM J  DISK J  DELAY s  BUDGET W  ACTUAL W\n" +
		"sda   4        900       7200  -     80     11.70s   0       0.41ms / 1.27ms  100.0  20.0    0.00     9.25      7.50\n" +
		"sdb   0        0         0     -     128    11.70s   0       0.00ms / 0.00ms  0.0    0.0     0.00     -         -\n"
	if got := buf.String(); got != want {
		t.Errorf("capped status table mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderFleetGolden pins the "fleet" subcommand's table: cap
// header, one row per budget, stale rows flagged.
func TestRenderFleetGolden(t *testing.T) {
	st := serve.FleetStatus{
		PowerCapW: 18,
		FloorW:    8.01,
		Epoch:     12,
		Assignments: []fleet.Assignment{
			{Disk: "sda", BudgetW: 9.25, DemandW: 10.4, FloorW: 8.01},
			{Disk: "sdb", BudgetW: 8.75, DemandW: 8.01, FloorW: 8.01, Stale: true},
		},
	}
	var buf bytes.Buffer
	if err := renderFleet(&buf, st); err != nil {
		t.Fatal(err)
	}
	want := "power cap 18.00 W  floor 8.01 W/shard  epoch 12\n" +
		"\n" +
		"DISK  BUDGET W  DEMAND W  FLOOR W  STALE\n" +
		"sda   9.25      10.40     8.01     -\n" +
		"sdb   8.75      8.01      8.01     stale\n"
	if got := buf.String(); got != want {
		t.Errorf("fleet table mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestFleetCommandDisabled is the negative contract end to end: the
// "fleet" subcommand against a daemon running without -power-cap-w
// surfaces the 404 as an error. The handler is the real nil-safe
// serve.FleetHandler of a nil server — the same code path an uncapped
// jointpmd mounts.
func TestFleetCommandDisabled(t *testing.T) {
	var disabled *serve.Server
	ts := httptest.NewServer(disabled.FleetHandler())
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	var buf bytes.Buffer
	err := run([]string{"-addr", addr, "fleet"}, &buf)
	if err == nil {
		t.Fatal("fleet command against an uncapped daemon succeeded")
	}
	if !strings.Contains(err.Error(), "404") || !strings.Contains(err.Error(), "fleet coordinator disabled") {
		t.Fatalf("error %q does not surface the 404 reason", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("fleet command wrote output despite the error: %q", buf.String())
	}
}

// TestRunUnknownCommand: argument errors are reported, not panics.
func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown command accepted")
	}
}
