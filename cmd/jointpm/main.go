// Command jointpm regenerates the paper's evaluation artifacts. Each
// experiment id corresponds to one table or figure; see DESIGN.md for the
// per-experiment index.
//
// Usage:
//
//	jointpm -exp fig7                 # full paper-scale data-set sweep
//	jointpm -exp table4 -scale quick  # fast shape check
//	jointpm -list                     # show available experiments
//	jointpm -exp all -scale quick     # everything, quick scale
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"jointpm/internal/experiments"
	"jointpm/internal/profiling"
	"jointpm/internal/simtime"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (or \"all\")")
		scale      = flag.String("scale", "paper", "dimension preset: paper or quick")
		horizon    = flag.Float64("horizon", 0, "metered simulated seconds per run (0 = preset default)")
		seed       = flag.Int64("seed", 1, "workload seed")
		list       = flag.Bool("list", false, "list experiments and exit")
		check      = flag.Bool("check", false, "evaluate the paper's shape claims after sweep experiments")
		csvPath    = flag.String("csv", "", "also export sweep experiments to CSV files under this directory")
		seeds      = flag.Int("seeds", 0, "replicate sweep experiments over N seeds and report mean±sd")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-9s %-14s %s\n", e.ID, e.Paper, e.Desc)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: jointpm -exp <id> [-scale paper|quick]")
			os.Exit(2)
		}
		return
	}

	s, err := buildScale(*scale, *horizon)
	if err != nil {
		fatal(err)
	}

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	failedClaims := run(s, *exp, *seed, *seeds, *check, *csvPath)
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
	if failedClaims > 0 {
		fmt.Printf("\n%d claim(s) FAILED\n", failedClaims)
		os.Exit(1)
	}
}

// run executes the selected experiments and returns the number of failed
// shape claims (profile flushing must happen after it, so it never calls
// os.Exit on that path).
func run(s experiments.Scale, exp string, seed int64, seeds int, check bool, csvPath string) (failedClaims int) {
	ids := []string{exp}
	if exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s (%s) — scale %s, seed %d ===\n", e.ID, e.Paper, s.Name, seed)
		start := time.Now()
		_, isSweep := experiments.Sweeps[id]
		if isSweep && seeds >= 2 {
			list := make([]int64, seeds)
			for i := range list {
				list[i] = seed + int64(i)
			}
			if err := experiments.RunSweepReplicated(id, s, list, os.Stdout); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
		} else if isSweep && (check || csvPath != "") {
			var csvW io.Writer
			if csvPath != "" {
				if err := os.MkdirAll(csvPath, 0o755); err != nil {
					fatal(err)
				}
				f, err := os.Create(filepath.Join(csvPath, id+".csv"))
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				csvW = f
			}
			failed, err := experiments.RunSweep(id, s, seed, os.Stdout, csvW, check)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			failedClaims += failed
		} else if err := e.Run(s, seed, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Printf("\n[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return failedClaims
}

func buildScale(name string, horizon float64) (experiments.Scale, error) {
	h := simtime.Seconds(horizon)
	switch name {
	case "paper":
		if h <= 0 {
			h = 7200
		}
		return experiments.PaperScale(h), nil
	case "quick":
		if h <= 0 {
			h = 1800
		}
		return experiments.QuickScale(h), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (want paper or quick)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jointpm:", err)
	os.Exit(1)
}
