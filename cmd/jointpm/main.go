// Command jointpm regenerates the paper's evaluation artifacts. Each
// experiment id corresponds to one table or figure; see DESIGN.md for the
// per-experiment index.
//
// Usage:
//
//	jointpm -exp fig7                 # full paper-scale data-set sweep
//	jointpm -exp table4 -scale quick  # fast shape check
//	jointpm -list                     # show available experiments
//	jointpm -exp all -scale quick     # everything, quick scale
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"jointpm/internal/experiments"
	"jointpm/internal/obs"
	"jointpm/internal/profiling"
	"jointpm/internal/shutdown"
	"jointpm/internal/simtime"
)

// errClaimsFailed marks the "claims evaluated false" exit: already
// reported in the run summary, so main exits non-zero without a second
// stderr line.
var errClaimsFailed = errors.New("claims failed")

func main() {
	err := run()
	if err == nil {
		return
	}
	if !errors.Is(err, errClaimsFailed) {
		fmt.Fprintln(os.Stderr, "jointpm:", err)
	}
	os.Exit(1)
}

func run() (retErr error) {
	var (
		exp           = flag.String("exp", "", "experiment id (or \"all\")")
		scale         = flag.String("scale", "paper", "dimension preset: paper or quick")
		horizon       = flag.Float64("horizon", 0, "metered simulated seconds per run (0 = preset default)")
		seed          = flag.Int64("seed", 1, "workload seed")
		list          = flag.Bool("list", false, "list experiments and exit")
		check         = flag.Bool("check", false, "evaluate the paper's shape claims after sweep experiments")
		csvPath       = flag.String("csv", "", "also export sweep experiments to CSV files under this directory")
		seeds         = flag.Int("seeds", 0, "replicate sweep experiments over N seeds and report mean±sd")
		metricsAddr   = flag.String("metrics-addr", "", "serve /metrics and /debug/vars on this address while running")
		metricsLinger = flag.Duration("metrics-linger", 0, "keep serving metrics this long after the run finishes")
		decTrace      = flag.String("decision-trace", "", "append one JSON line per joint decision to this file")
		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list || *exp == "" {
		out := os.Stdout
		if *exp == "" && !*list {
			out = os.Stderr
		}
		fmt.Fprintln(out, "experiments:")
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "  %-9s %-14s %s\n", e.ID, e.Paper, e.Desc)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(out, "\nrun one with: jointpm -exp <id> [-scale paper|quick]")
			os.Exit(2)
		}
		return nil
	}

	s, err := buildScale(*scale, *horizon)
	if err != nil {
		return fmt.Errorf("parsing -scale: %w", err)
	}

	// Cleanups go on a shutdown stack (not plain defers) so an interrupt
	// mid-experiment or mid-linger still flushes the journal and the
	// profiles before exiting 128+sig.
	shut := shutdown.NewStack("jointpm")
	defer func() {
		if cerr := shut.Run(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	stopSignals := shut.HandleSignals()
	defer stopSignals()

	// Observability: the registry and journal sink attach to the scale, so
	// every run the experiments launch shares them. The sink is flushed on
	// every exit path, success or failure, like the profile flush below.
	if *metricsAddr != "" {
		s.Metrics = obs.NewRegistry()
		obs.Publish("jointpm", s.Metrics)
		srv, addr, err := obs.Serve(*metricsAddr, s.Metrics)
		if err != nil {
			return fmt.Errorf("serving -metrics-addr %s: %w", *metricsAddr, err)
		}
		fmt.Fprintf(os.Stderr, "jointpm: metrics on http://%s/metrics\n", addr)
		shut.Defer(srv.Close)
	}
	if *decTrace != "" {
		sink, err := obs.NewFileSink(*decTrace, obs.DefaultSinkDepth)
		if err != nil {
			return fmt.Errorf("opening -decision-trace: %w", err)
		}
		s.DecisionTrace = sink
		shut.Defer(func() error {
			if cerr := sink.Close(); cerr != nil {
				return fmt.Errorf("flushing -decision-trace %s: %w", *decTrace, cerr)
			}
			return nil
		})
	}

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return fmt.Errorf("starting profiles: %w", err)
	}
	shut.Defer(func() error {
		if perr := stopProfiles(); perr != nil {
			return fmt.Errorf("flushing profiles: %w", perr)
		}
		return nil
	})
	defer func() {
		if *metricsAddr != "" && *metricsLinger > 0 {
			fmt.Fprintf(os.Stderr, "jointpm: lingering %v for scrapes\n", *metricsLinger)
			time.Sleep(*metricsLinger)
		}
	}()

	failedClaims, err := runExperiments(s, *exp, *seed, *seeds, *check, *csvPath)
	if err != nil {
		return err
	}
	if failedClaims > 0 {
		fmt.Printf("\n%d claim(s) FAILED\n", failedClaims)
		return errClaimsFailed
	}
	return nil
}

// runExperiments executes the selected experiments and returns the number
// of failed shape claims. It reports errors instead of exiting so the
// deferred sink/profile flushes in run always happen.
func runExperiments(s experiments.Scale, exp string, seed int64, seeds int, check bool, csvPath string) (failedClaims int, retErr error) {
	ids := []string{exp}
	if exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			return failedClaims, fmt.Errorf("resolving -exp: %w", err)
		}
		fmt.Printf("=== %s (%s) — scale %s, seed %d ===\n", e.ID, e.Paper, s.Name, seed)
		start := time.Now()
		_, isSweep := experiments.Sweeps[id]
		if isSweep && seeds >= 2 {
			list := make([]int64, seeds)
			for i := range list {
				list[i] = seed + int64(i)
			}
			if err := experiments.RunSweepReplicated(id, s, list, os.Stdout); err != nil {
				return failedClaims, fmt.Errorf("running %s: %w", id, err)
			}
		} else if isSweep && (check || csvPath != "") {
			var csvW io.Writer
			if csvPath != "" {
				if err := os.MkdirAll(csvPath, 0o755); err != nil {
					return failedClaims, fmt.Errorf("creating -csv dir: %w", err)
				}
				f, err := os.Create(filepath.Join(csvPath, id+".csv"))
				if err != nil {
					return failedClaims, fmt.Errorf("creating -csv file: %w", err)
				}
				defer f.Close()
				csvW = f
			}
			failed, err := experiments.RunSweep(id, s, seed, os.Stdout, csvW, check)
			if err != nil {
				return failedClaims, fmt.Errorf("running %s: %w", id, err)
			}
			failedClaims += failed
		} else if err := e.Run(s, seed, os.Stdout); err != nil {
			return failedClaims, fmt.Errorf("running %s: %w", id, err)
		}
		fmt.Printf("\n[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return failedClaims, nil
}

func buildScale(name string, horizon float64) (experiments.Scale, error) {
	h := simtime.Seconds(horizon)
	switch name {
	case "paper":
		if h <= 0 {
			h = 7200
		}
		return experiments.PaperScale(h), nil
	case "quick":
		if h <= 0 {
			h = 1800
		}
		return experiments.QuickScale(h), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (want paper or quick)", name)
	}
}
