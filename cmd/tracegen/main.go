// Command tracegen generates SPECWeb99-style disk-cache access traces and
// applies the paper's synthesizer transforms, writing the result in the
// binary or text trace format so pmsim (or external tools) can replay it.
//
// Usage:
//
//	tracegen -dataset 16GB -rate 100MB -pop 0.1 -dur 3600 -o base.trc
//	tracegen -in base.trc -scale-dataset 4 -o big.trc
//	tracegen -in base.trc -scale-rate 0.5 -pop-target 0.05 -o derived.trc
//	tracegen -in base.trc -text -o dump.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"jointpm/internal/simtime"
	"jointpm/internal/trace"
	"jointpm/internal/workload"
)

func main() {
	var (
		in      = flag.String("in", "", "input trace to transform (omit to generate)")
		out     = flag.String("o", "", "output file (default stdout)")
		text    = flag.Bool("text", false, "write the text format instead of binary")
		dataset = flag.String("dataset", "16GB", "data-set size (generate)")
		page    = flag.String("page", "64KB", "page size (generate)")
		rate    = flag.String("rate", "100MB", "offered byte rate per second (generate)")
		pop     = flag.Float64("pop", 0.1, "popularity: fraction of bytes receiving 90% of accesses (generate)")
		dur     = flag.Float64("dur", 3600, "trace duration in seconds (generate)")
		fscale  = flag.Int64("filescale", 16, "SPECWeb99 file-size class multiplier (generate)")
		seed    = flag.Int64("seed", 1, "random seed")

		scaleDS   = flag.Int("scale-dataset", 0, "enlarge data set by a power-of-two factor")
		scaleRate = flag.Float64("scale-rate", 0, "multiply the byte rate")
		popTarget = flag.Float64("pop-target", 0, "retarget popularity density")
		stats     = flag.Bool("stats", false, "print a full workload summary to stderr")
	)
	flag.Parse()

	tr, err := load(*in, *dataset, *page, *rate, *pop, *dur, *fscale, *seed)
	if err != nil {
		fatal(err)
	}

	synth := workload.NewSynthesizer(*seed + 1000)
	if *scaleDS > 0 {
		if tr, err = synth.ScaleDataSet(tr, *scaleDS); err != nil {
			fatal(err)
		}
	}
	if *scaleRate > 0 {
		if tr, err = synth.ScaleRate(tr, *scaleRate); err != nil {
			fatal(err)
		}
	}
	if *popTarget > 0 {
		if tr, err = synth.SetPopularity(tr, *popTarget); err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *text {
		err = trace.WriteText(w, tr)
	} else {
		err = trace.WriteBinary(w, tr)
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, workload.Analyze(tr))
	} else {
		fmt.Fprintf(os.Stderr, "tracegen: %d requests, %s data set, %.1f s, mean rate %.3g MB/s, popularity %.3f\n",
			len(tr.Requests), tr.DataSetBytes, float64(tr.Duration),
			tr.MeanRate()/float64(simtime.MB), workload.PopularityOf(tr))
	}
}

func load(in, dataset, page, rate string, pop, dur float64, fscale, seed int64) (*trace.Trace, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadBinary(f)
	}
	ds, err := simtime.ParseBytes(dataset)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	ps, err := simtime.ParseBytes(page)
	if err != nil {
		return nil, fmt.Errorf("page: %w", err)
	}
	rt, err := simtime.ParseBytes(rate)
	if err != nil {
		return nil, fmt.Errorf("rate: %w", err)
	}
	return workload.Generate(workload.Config{
		DataSetBytes: ds,
		PageSize:     ps,
		Rate:         float64(rt),
		Popularity:   pop,
		Duration:     simtime.Seconds(dur),
		Classes:      workload.SPECWeb99Classes(fscale),
		Seed:         seed,
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
