package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"jointpm/internal/simtime"
	"jointpm/internal/trace"
	"jointpm/internal/workload"
)

// TestMain lets this test binary impersonate jointpmd: with the marker
// env var set it runs main() on its arguments instead of the suite, so
// the daemon tests re-exec themselves rather than building a binary.
func TestMain(m *testing.M) {
	if os.Getenv("JOINTPMD_BE_DAEMON") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func writeTestTrace(t *testing.T, path string) {
	t.Helper()
	tr, err := workload.Generate(workload.Config{
		DataSetBytes: 64 * simtime.MB,
		PageSize:     64 * simtime.KB,
		Rate:         0.5 * float64(simtime.MB),
		Popularity:   0.1,
		Duration:     1800,
		Classes:      workload.SPECWeb99Classes(64),
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
}

func daemonArgs(snap string) []string {
	args := []string{
		"-disk", "d0", "-mem", "128MB", "-bank", "1MB", "-period", "120",
	}
	if snap != "" {
		args = append(args, "-snapshot", snap, "-snapshot-every", "2")
	}
	return args
}

func decisionLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "decision ") {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestWarmResumeAfterSigterm is the daemon smoke: stream part of a
// trace into jointpmd, SIGTERM it mid-stream, restart it on the full
// stream, and require the concatenated decision lines to be exactly the
// uninterrupted run's.
func TestWarmResumeAfterSigterm(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs daemon runs")
	}
	dir := t.TempDir()
	trPath := filepath.Join(dir, "w.trc")
	snap := filepath.Join(dir, "d.snap")
	writeTestTrace(t, trPath)
	traceBytes, err := os.ReadFile(trPath)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one uninterrupted daemon over the whole stream.
	ref := exec.Command(os.Args[0], daemonArgs("")...)
	ref.Env = append(os.Environ(), "JOINTPMD_BE_DAEMON=1")
	ref.Stdin = bytes.NewReader(traceBytes)
	refOut, err := ref.Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := decisionLines(string(refOut))
	if len(want) < 10 {
		t.Fatalf("reference run printed %d decisions", len(want))
	}

	// First life: feed ~60%% of the raw stream, hold the pipe open so
	// the daemon blocks mid-read, then SIGTERM it. The handler runs the
	// shutdown stack, which writes the checkpoint and exits 143.
	cmd := exec.Command(os.Args[0], daemonArgs(snap)...)
	cmd.Env = append(os.Environ(), "JOINTPMD_BE_DAEMON=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var mu sync.Mutex
	var got1 []string
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if l := sc.Text(); strings.HasPrefix(l, "decision ") {
				mu.Lock()
				got1 = append(got1, l)
				mu.Unlock()
			}
		}
	}()
	if _, err := stdin.Write(traceBytes[:len(traceBytes)*6/10]); err != nil {
		t.Fatal(err)
	}

	// Wait until the daemon has demonstrably made progress, so the
	// restart genuinely resumes mid-run rather than from scratch.
	deadline := time.Now().Add(time.Minute)
	for {
		mu.Lock()
		n := len(got1)
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon closed only %d periods on the partial stream", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 143 {
		t.Fatalf("Wait = %v, want exit 143 (128+SIGTERM)", err)
	}
	<-scanDone
	stdin.Close()

	// Second life: full stream from the start; the daemon restores the
	// checkpoint and skips what it already consumed.
	cmd2 := exec.Command(os.Args[0], daemonArgs(snap)...)
	cmd2.Env = append(os.Environ(), "JOINTPMD_BE_DAEMON=1")
	cmd2.Stdin = bytes.NewReader(traceBytes)
	var stderr2 bytes.Buffer
	cmd2.Stderr = &stderr2
	out2, err := cmd2.Output()
	if err != nil {
		t.Fatalf("restarted run: %v\nstderr: %s", err, stderr2.String())
	}
	if !strings.Contains(stderr2.String(), "restored disk=d0") {
		t.Fatalf("restart did not report a restore:\n%s", stderr2.String())
	}

	got := append(got1, decisionLines(string(out2))...)
	if len(got) != len(want) {
		t.Fatalf("interrupted+restarted run printed %d decisions, reference %d\ngot: %v", len(got), len(want), got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("decision %d diverges after warm resume:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestPowerCapUncappedDifferential is the daemon re-exec level of the
// fleet differential suite: the same stream run uncapped, with an
// explicit "-power-cap-w +Inf", and with a slack finite cap must print
// identical decision lines.
func TestPowerCapUncappedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs daemon runs")
	}
	dir := t.TempDir()
	trPath := filepath.Join(dir, "w.trc")
	writeTestTrace(t, trPath)
	traceBytes, err := os.ReadFile(trPath)
	if err != nil {
		t.Fatal(err)
	}

	run := func(extra ...string) []string {
		cmd := exec.Command(os.Args[0], append(daemonArgs(""), extra...)...)
		cmd.Env = append(os.Environ(), "JOINTPMD_BE_DAEMON=1")
		cmd.Stdin = bytes.NewReader(traceBytes)
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("daemon run %v: %v", extra, err)
		}
		return decisionLines(string(out))
	}

	want := run()
	if len(want) < 10 {
		t.Fatalf("reference run printed %d decisions", len(want))
	}
	for _, extra := range [][]string{
		{"-power-cap-w", "+Inf"},
		{"-power-cap-w", "1000000"},
	} {
		got := run(extra...)
		if len(got) != len(want) {
			t.Fatalf("%v printed %d decisions, reference %d", extra, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v decision %d diverges:\n got %s\nwant %s", extra, i, got[i], want[i])
			}
		}
	}
}

// TestSocketStream drives the daemon's listener mode: two connections
// stream two disks over a unix socket, and the daemon emits decision
// lines tagged with each disk's name.
func TestSocketStream(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs a daemon run")
	}
	dir := t.TempDir()
	trPath := filepath.Join(dir, "w.trc")
	writeTestTrace(t, trPath)
	traceBytes, err := os.ReadFile(trPath)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "d.sock")

	cmd := exec.Command(os.Args[0], "-listen", "unix:"+sock,
		"-mem", "128MB", "-bank", "1MB", "-period", "120")
	cmd.Env = append(os.Environ(), "JOINTPMD_BE_DAEMON=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the socket to appear.
	deadline := time.Now().Add(time.Minute)
	for {
		if _, err := os.Stat(sock); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never created the socket")
		}
		time.Sleep(10 * time.Millisecond)
	}

	stream := func(disk string) {
		conn, err := net.Dial("unix", sock)
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		if _, err := io.WriteString(conn, "disk "+disk+"\n"); err != nil {
			t.Error(err)
			return
		}
		if _, err := conn.Write(traceBytes); err != nil {
			t.Error(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); stream("sda") }()
	go func() { defer wg.Done(); stream("sdb") }()
	wg.Wait()

	// Collect decisions until both disks have reported every period.
	counts := map[string]int{}
	sc := bufio.NewScanner(stdout)
	timer := time.AfterFunc(time.Minute, func() { cmd.Process.Kill() })
	defer timer.Stop()
	for sc.Scan() {
		l := sc.Text()
		if !strings.HasPrefix(l, "decision ") {
			continue
		}
		for _, d := range []string{"sda", "sdb"} {
			if strings.Contains(l, "disk="+d+" ") {
				counts[d]++
			}
		}
		if counts["sda"] >= 14 && counts["sdb"] >= 14 {
			break
		}
	}
	if counts["sda"] < 14 || counts["sdb"] < 14 {
		t.Fatalf("decision counts %v, want at least 14 per disk", counts)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The handler closes the listener; the accept loop may then return
	// cleanly (exit 0) before the handler's own exit(143) — both are a
	// graceful stop.
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if err != nil && (!errors.As(err, &exitErr) || exitErr.ExitCode() != 143) {
		t.Fatalf("Wait = %v, want clean exit or 143", err)
	}
}

// TestDebugEndpointsAndSigquit is the introspection smoke: a live
// daemon answers /debug/status and /debug/periods, exposes the latency
// histograms and the energy split on /metrics, and dumps its flight
// recorders to stderr on SIGQUIT without dying.
func TestDebugEndpointsAndSigquit(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs a daemon run")
	}
	dir := t.TempDir()
	trPath := filepath.Join(dir, "w.trc")
	writeTestTrace(t, trPath)
	traceBytes, err := os.ReadFile(trPath)
	if err != nil {
		t.Fatal(err)
	}

	args := append(daemonArgs(""), "-metrics-addr", "127.0.0.1:0", "-flight", "8")
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "JOINTPMD_BE_DAEMON=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var mu sync.Mutex
	var decisions int
	var errLines []string
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "decision ") {
				mu.Lock()
				decisions++
				mu.Unlock()
			}
		}
	}()
	scanErrDone := make(chan struct{})
	go func() {
		defer close(scanErrDone)
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			mu.Lock()
			errLines = append(errLines, sc.Text())
			mu.Unlock()
		}
	}()
	stderrHas := func(substr string) bool {
		mu.Lock()
		defer mu.Unlock()
		for _, l := range errLines {
			if strings.Contains(l, substr) {
				return true
			}
		}
		return false
	}

	// The daemon prints the bound metrics address on stderr.
	var baseURL string
	deadline := time.Now().Add(time.Minute)
	for baseURL == "" {
		mu.Lock()
		for _, l := range errLines {
			if rest, ok := strings.CutPrefix(l, "jointpmd: metrics on http://"); ok {
				baseURL = "http://" + strings.TrimSuffix(rest, "/metrics")
			}
		}
		mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatal("daemon never announced its metrics address")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, err := stdin.Write(traceBytes[:len(traceBytes)*6/10]); err != nil {
		t.Fatal(err)
	}
	for {
		mu.Lock()
		n := decisions
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon closed only %d periods on the partial stream", n)
		}
		time.Sleep(10 * time.Millisecond)
	}

	get := func(path string) (int, []byte) {
		resp, err := http.Get(baseURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, body
	}

	// /debug/status: the d0 shard reports periods, a cumulative energy
	// split, and decide quantiles from the flight recorder.
	_, body := get("/debug/status")
	var st struct {
		FlightDepth int `json:"flight_depth"`
		Shards      []struct {
			Disk        string  `json:"disk"`
			Periods     int64   `json:"periods"`
			DecideP99Ms float64 `json:"decide_p99_ms"`
			Energy      struct {
				MemNapJ     float64 `json:"mem_nap_j"`
				DiskActiveJ float64 `json:"disk_active_j"`
			} `json:"energy"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status JSON: %v\n%s", err, body)
	}
	if st.FlightDepth != 8 || len(st.Shards) != 1 || st.Shards[0].Disk != "d0" {
		t.Fatalf("status = %s", body)
	}
	if s := st.Shards[0]; s.Periods < 3 || s.Energy.MemNapJ <= 0 || s.DecideP99Ms <= 0 {
		t.Errorf("d0 status = %+v", s)
	}

	// /debug/periods with filters; unknown disk 404s.
	_, body = get("/debug/periods?disk=d0&n=2")
	var pr struct {
		Disks map[string][]struct {
			Period int64 `json:"period"`
		} `json:"disks"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("periods JSON: %v\n%s", err, body)
	}
	if len(pr.Disks["d0"]) != 2 {
		t.Fatalf("periods?n=2 returned %d records:\n%s", len(pr.Disks["d0"]), body)
	}
	if code, _ := get("/debug/periods?disk=nope"); code != http.StatusNotFound {
		t.Errorf("unknown disk status = %d, want 404", code)
	}

	// /metrics carries the lifecycle histograms and the energy split.
	_, body = get("/metrics")
	for _, want := range []string{
		"jointpm_serve_decide_wall_s_p99 ",
		"jointpm_serve_ingest_ns_per_ref_count ",
		"jointpm_serve_boundary_to_emit_s_p50 ",
		"jointpm_serve_energy_total_j ",
		"jointpm_serve_energy_mem_nap_j ",
		"jointpm_serve_uptime_s ",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// SIGQUIT dumps the flight recorder and the daemon keeps serving.
	if err := cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	for !stderrHas("# flight disk=d0") {
		if time.Now().After(deadline) {
			t.Fatal("no flight dump on stderr after SIGQUIT")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code, _ := get("/debug/status"); code != http.StatusOK {
		t.Errorf("daemon stopped serving after SIGQUIT: status %d", code)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 143 {
		t.Fatalf("Wait = %v, want exit 143 (128+SIGTERM)", err)
	}
	<-scanErrDone
	stdin.Close()
}
