// Command jointpmd is the long-running daemon form of the joint power
// manager: it ingests disk access streams incrementally — the trace
// codecs' stream form on stdin, or per-connection on a unix/TCP
// socket — and emits one "decision" line per closed adaptation period
// for each disk it manages.
//
// With -snapshot the daemon checkpoints every shard's controller state
// (extended-LRU stack, partial period log, manager history, counters)
// every -snapshot-every periods and on graceful shutdown. A restarted
// daemon restores the checkpoint and, because access streams replay
// from their origin, skips the requests it has already consumed: its
// first post-restart decision is exactly what an uninterrupted run
// would have decided. See DESIGN.md for the snapshot format.
//
// Usage:
//
//	jointpmd -mem 128MB -bank 1MB -period 120 -snapshot d.snap < trace.bin
//	jointpmd -listen unix:/run/jointpmd.sock -snapshot d.snap
//	jointpmd -listen 127.0.0.1:7070 -metrics-addr 127.0.0.1:7071
//
// On a socket, each connection opens one stream: a "disk <name>\n"
// preamble, then a binary or text trace. Stdin mode serves the single
// disk named by -disk.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"jointpm/internal/core"
	"jointpm/internal/fault"
	"jointpm/internal/obs"
	"jointpm/internal/obs/flight"
	"jointpm/internal/serve"
	"jointpm/internal/shutdown"
	"jointpm/internal/simtime"
	"jointpm/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jointpmd:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		diskName      = flag.String("disk", "disk0", "disk name for the stdin stream")
		listen        = flag.String("listen", "", "accept streams on this address (unix:/path or host:port) instead of stdin")
		memTotal      = flag.String("mem", "128GB", "installed physical memory")
		bank          = flag.String("bank", "16MB", "memory bank size")
		page          = flag.String("page", "64KB", "page size")
		period        = flag.Float64("period", 600, "adaptation period in stream seconds")
		warmup        = flag.Int("warmup-periods", 0, "hold the safe default for the first N periods")
		snapshot      = flag.String("snapshot", "", "checkpoint file enabling warm restart")
		snapshotEvery = flag.Int64("snapshot-every", 5, "checkpoint every N closed periods (0: only on shutdown)")
		tick          = flag.Duration("tick", 0, "advance idle disks' stream clocks this often in wall time (0: periods close from stream time only)")
		faultsPath    = flag.String("faults", "", "fault plan JSON (supports daemon.crash_at_period)")
		metricsAddr   = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/status, and /debug/periods on this address")
		decTrace      = flag.String("decision-trace", "", "append one JSON line per joint decision to this file")
		decideMode    = flag.String("decide", "incremental", "observation path per shard: batch or incremental (bit-identical decisions)")
		refitDrift    = flag.Float64("refit-drift", 0, "steady-state refit drift-hold fraction (0: full slate search every period; 0.05 recommended)")
		flightDepth   = flag.Int("flight", flight.DefaultDepth, "per-shard flight recorder depth in periods (0: disabled)")
		powerCap      = flag.Float64("power-cap-w", 0, "global power cap in watts shared by every disk's (memory, disk) pair (0 or +Inf: uncapped, bit-identical to a build without the fleet layer)")
		fleetEpoch    = flag.Int64("fleet-epoch", 1, "with -power-cap-w, reallocate per-shard budgets every N closed periods per shard")
		speedLevels   = flag.Int("speed-levels", 0, "derive a DRPM speed ladder of N levels from the disk spec and price every candidate at every level (0 or 1: single-speed, bit-identical to a build without the ladder)")
	)
	flag.Parse()

	installed, err := simtime.ParseBytes(*memTotal)
	if err != nil {
		return fmt.Errorf("parsing -mem: %w", err)
	}
	bankSize, err := simtime.ParseBytes(*bank)
	if err != nil {
		return fmt.Errorf("parsing -bank: %w", err)
	}
	pageSize, err := simtime.ParseBytes(*page)
	if err != nil {
		return fmt.Errorf("parsing -page: %w", err)
	}

	// Cleanups go on a shutdown stack so SIGINT/SIGTERM still writes the
	// final checkpoint and flushes the journal before exiting 128+sig.
	// Registration order makes the LIFO run: checkpoint, then journal
	// flush, then metrics teardown.
	shut := shutdown.NewStack("jointpmd")
	defer func() {
		if cerr := shut.Run(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	stopSignals := shut.HandleSignals()
	defer stopSignals()

	mode, err := core.ParseDecideMode(*decideMode)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Decide:         mode,
		PageSize:       pageSize,
		BankSize:       bankSize,
		InstalledMem:   installed,
		Period:         simtime.Seconds(*period),
		WarmupPeriods:  *warmup,
		SnapshotPath:   *snapshot,
		SnapshotEvery:  *snapshotEvery,
		FlightRecorder: *flightDepth,
		RefitDriftFrac: *refitDrift,
		PowerCapW:      *powerCap,
		FleetEpoch:     *fleetEpoch,
		SpeedLevels:    *speedLevels,
	}
	if *metricsAddr != "" {
		// The HTTP server itself starts below, once the serve.Server
		// exists to back the /debug/status and /debug/periods handlers.
		cfg.Metrics = obs.NewRegistry()
		obs.Publish("jointpmd", cfg.Metrics)
	}
	if *decTrace != "" {
		sink, err := obs.NewFileSink(*decTrace, obs.DefaultSinkDepth)
		if err != nil {
			return fmt.Errorf("opening -decision-trace: %w", err)
		}
		cfg.DecisionTrace = sink
		shut.Defer(func() error {
			if cerr := sink.Close(); cerr != nil {
				return fmt.Errorf("flushing -decision-trace %s: %w", *decTrace, cerr)
			}
			return nil
		})
	}
	if *faultsPath != "" {
		plan, err := fault.LoadPlan(*faultsPath)
		if err != nil {
			return fmt.Errorf("loading -faults: %w", err)
		}
		cfg.Injector = fault.NewInjector(plan, cfg.Period, cfg.Metrics)
	}

	var outMu sync.Mutex
	multiSpeed := *speedLevels > 1
	cfg.OnDecision = func(d serve.Decision) {
		outMu.Lock()
		defer outMu.Unlock()
		// The level column only appears on multi-speed daemons, so
		// single-speed decision logs stay byte-identical to older builds.
		if multiSpeed {
			fmt.Printf("decision disk=%s period=%d banks=%d pages=%d timeout=%s fallback=%t level=%d\n",
				d.Disk, d.Period, d.Decision.Banks, d.Decision.Pages,
				formatTimeout(d.Decision.Timeout), d.Decision.Fallback, d.Decision.Level)
			return
		}
		fmt.Printf("decision disk=%s period=%d banks=%d pages=%d timeout=%s fallback=%t\n",
			d.Disk, d.Period, d.Decision.Banks, d.Decision.Pages,
			formatTimeout(d.Decision.Timeout), d.Decision.Fallback)
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	shut.Defer(srv.Close)

	if *metricsAddr != "" {
		msrv, addr, err := obs.ServeWith(*metricsAddr, cfg.Metrics, func(mux *http.ServeMux) {
			mux.Handle("/debug/status", srv.StatusHandler())
			mux.Handle("/debug/periods", srv.PeriodsHandler())
			mux.Handle("/debug/fleet", srv.FleetHandler())
		})
		if err != nil {
			return fmt.Errorf("serving -metrics-addr %s: %w", *metricsAddr, err)
		}
		fmt.Fprintf(os.Stderr, "jointpmd: metrics on http://%s/metrics\n", addr)
		shut.Defer(msrv.Close)
	}

	// SIGQUIT dumps the flight recorders to stderr and keeps running —
	// the live post-mortem for a daemon that looks wedged.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	go func() {
		for range quitCh {
			fmt.Fprintln(os.Stderr, "jointpmd: SIGQUIT: flight-recorder dump")
			if derr := srv.WriteFlightDump(os.Stderr); derr != nil {
				fmt.Fprintf(os.Stderr, "jointpmd: flight dump: %v\n", derr)
			}
		}
	}()
	shut.Defer(func() error {
		signal.Stop(quitCh)
		close(quitCh)
		return nil
	})

	names, err := srv.Restore()
	if err != nil {
		return err
	}
	for _, name := range names {
		sh, err := srv.Shard(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "jointpmd: restored disk=%s periods=%d consumed=%d\n",
			name, sh.Periods(), sh.Consumed())
	}

	opt := serve.StreamOptions{
		Tick: *tick,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "jointpmd: "+format+"\n", args...)
		},
	}
	if *listen != "" {
		network, address := "tcp", *listen
		if path, ok := strings.CutPrefix(*listen, "unix:"); ok {
			network, address = "unix", path
			// A previous unclean exit can leave the socket file behind.
			os.Remove(path)
		}
		ln, err := net.Listen(network, address)
		if err != nil {
			return fmt.Errorf("listening on %s: %w", *listen, err)
		}
		shut.Defer(ln.Close)
		fmt.Fprintf(os.Stderr, "jointpmd: listening on %s\n", ln.Addr())
		return srv.ServeListener(ln, opt)
	}
	sh, err := srv.Shard(*diskName)
	if err != nil {
		return err
	}
	st, err := trace.SniffStream(bufio.NewReader(os.Stdin))
	if err != nil {
		return fmt.Errorf("reading stdin: %w", err)
	}
	return srv.ServeStream(sh, st, opt)
}

func formatTimeout(t simtime.Seconds) string {
	if math.IsInf(float64(t), 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3fs", float64(t))
}

// The stream pumps — preamble handling, ring-buffered ingest, idle
// ticks, replay skipping — live in the serve package (ServeStream,
// ServeListener); this binary only owns flag parsing, the listener
// socket, and process lifecycle.
