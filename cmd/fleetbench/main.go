// Command fleetbench measures the batched ingest pipeline at fleet
// scale: it starts one in-process jointpmd server on a real TCP
// listener, dials N concurrent client connections (one disk stream
// each, the socket protocol's "disk <name>\n" preamble followed by a
// binary trace), and reports the aggregate ingest rate the daemon
// sustained plus the pooled Decide latency quantiles from every
// shard's flight recorder.
//
// The summary lands in BENCH_fleet.json (experiments.WriteBenchSummary
// format), so consecutive runs across a perf change chain their own
// before/after wall times.
//
// With -power-cap-w the run also exercises the fleet coordinator: every
// shard exists before the first byte arrives, one initial reallocation
// budgets them all, and epochs re-solve the cap as periods close. The
// summary then gains cap-compliance fields (peak per-period aggregate
// power, budget-violation count, Jain fairness index) and the run fails
// if any trusted period exceeded the budget it was decided under — the
// CI cap-compliance smoke.
//
// Usage:
//
//	fleetbench -streams 1024 -out .
//	fleetbench -streams 1024 -power-cap-w 7500 -out .
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"jointpm/internal/core"
	"jointpm/internal/experiments"
	"jointpm/internal/fleet"
	"jointpm/internal/obs/flight"
	"jointpm/internal/serve"
	"jointpm/internal/simtime"
	"jointpm/internal/trace"
	"jointpm/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		streams  = flag.Int("streams", 1024, "concurrent client connections (one disk stream each)")
		memTotal = flag.String("mem", "64MB", "installed physical memory per shard")
		bank     = flag.String("bank", "1MB", "memory bank size")
		page     = flag.String("page", "64KB", "page size")
		period   = flag.Float64("period", 120, "adaptation period in stream seconds")
		duration = flag.Float64("duration", 1200, "per-stream trace length in stream seconds")
		rate     = flag.Float64("rate", 0.25, "per-stream request rate in MB/s of stream time")
		seed     = flag.Int64("seed", 42, "workload seed")
		outDir   = flag.String("out", ".", "directory for BENCH_fleet.json")
		powerCap = flag.Float64("power-cap-w", 0, "global power cap in watts across every stream (0: uncapped); the run fails if any trusted period exceeded its budget")
		fleetEp  = flag.Int64("fleet-epoch", 16, "with -power-cap-w, each shard triggers a reallocation every N of its periods (1: every period — O(streams) summaries per solve, expensive at fleet scale)")
	)
	flag.Parse()

	installed, err := simtime.ParseBytes(*memTotal)
	if err != nil {
		return fmt.Errorf("parsing -mem: %w", err)
	}
	bankSize, err := simtime.ParseBytes(*bank)
	if err != nil {
		return fmt.Errorf("parsing -bank: %w", err)
	}
	pageSize, err := simtime.ParseBytes(*page)
	if err != nil {
		return fmt.Errorf("parsing -page: %w", err)
	}

	// One trace, encoded once: every stream replays the same byte string
	// under a distinct disk name, so the server hosts N independent
	// shards while the client side pays the generation cost once.
	tr, err := workload.Generate(workload.Config{
		DataSetBytes: 8 * installed,
		PageSize:     pageSize,
		Rate:         *rate * float64(simtime.MB),
		Popularity:   0.1,
		Duration:     simtime.Seconds(*duration),
		Classes:      workload.SPECWeb99Classes(64),
		Seed:         *seed,
	})
	if err != nil {
		return fmt.Errorf("generating workload: %w", err)
	}
	var enc bytes.Buffer
	if err := trace.WriteBinary(&enc, tr); err != nil {
		return fmt.Errorf("encoding trace: %w", err)
	}
	data := enc.Bytes()
	refsPerStream := int64(0)
	for i := range tr.Requests {
		refsPerStream += int64(tr.Requests[i].Pages)
	}
	fmt.Fprintf(os.Stderr, "fleetbench: %d streams x %d requests (%d page refs, %d bytes encoded)\n",
		*streams, len(tr.Requests), refsPerStream, len(data))

	srv, err := serve.New(serve.Config{
		Decide:         core.ModeIncremental,
		PageSize:       pageSize,
		BankSize:       bankSize,
		InstalledMem:   installed,
		Period:         simtime.Seconds(*period),
		FlightRecorder: flight.DefaultDepth,
		PowerCapW:      *powerCap,
		FleetEpoch:     *fleetEp,
	})
	if err != nil {
		return err
	}
	if srv.FleetEnabled() {
		// Create every shard up front and solve the cap once before any
		// stream connects, so even the first period of the slowest-dialled
		// stream decides under a budget.
		for i := 0; i < *streams; i++ {
			if _, err := srv.Shard(diskName(i)); err != nil {
				return err
			}
		}
		srv.FleetReallocate()
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serverDone := make(chan error, 1)
	go func() {
		serverDone <- srv.ServeListener(ln, serve.StreamOptions{})
	}()

	// Drive the fleet: each client writes its preamble and the whole
	// trace, then closes. The wall clock spans first dial to last
	// drained connection (ServeListener returns only once every accepted
	// stream has been ingested).
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, *streams)
	for i := 0; i < *streams; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errCh <- fmt.Errorf("stream %d: %w", id, err)
				return
			}
			defer conn.Close()
			if _, err := fmt.Fprintf(conn, "disk %s\n", diskName(id)); err != nil {
				errCh <- fmt.Errorf("stream %d: %w", id, err)
				return
			}
			if _, err := conn.Write(data); err != nil {
				errCh <- fmt.Errorf("stream %d: %w", id, err)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	// Writers finishing does not mean the server is done — a short trace
	// fits in the kernel socket buffers, so a client can write and close
	// before its connection is even accepted, and closing the listener at
	// that point would strand the queued connections. Poll the daemon
	// until every page ref has landed, then shut the listener down.
	wantRefs := refsPerStream * int64(*streams)
	deadline := time.Now().Add(10 * time.Minute)
	for srv.Status().RefsIngested < wantRefs {
		if time.Now().After(deadline) {
			return fmt.Errorf("ingest stalled: %d refs landed, want %d", srv.Status().RefsIngested, wantRefs)
		}
		time.Sleep(time.Millisecond)
	}
	wall := time.Since(start).Seconds()
	if err := ln.Close(); err != nil {
		return err
	}
	if err := <-serverDone; err != nil {
		return err
	}

	st := srv.Status()
	if st.RefsIngested != wantRefs {
		return fmt.Errorf("ingested %d refs, want %d", st.RefsIngested, wantRefs)
	}

	// Pool Decide wall times across every shard's flight recorder;
	// warmup periods never time a Decide, and unmeasured (zero) spans
	// are skipped.
	// Under a cap, also audit the flight records: every trusted period
	// (priced, not degraded, not the over-budget fallback) must respect
	// the budget it was decided under, the per-period aggregate traces
	// the fleet's draw against the cap, and the Jain index over per-shard
	// mean power measures how evenly the cap was shared.
	var decideNs []int64
	var periods int64
	violations := 0
	aggW := map[int64]float64{}
	var shardMeans []float64
	for i := 0; i < *streams; i++ {
		sh, err := srv.Shard(diskName(i))
		if err != nil {
			return err
		}
		periods += sh.Periods()
		var sumW float64
		var nW int
		for _, r := range sh.Flight().Last(0) {
			if !r.Warmup && r.DecideNs > 0 {
				decideNs = append(decideNs, r.DecideNs)
			}
			if r.Warmup || r.Fallback || r.OverBudget || r.PowerW <= 0 {
				continue
			}
			if r.BudgetW > 0 && r.PowerW > r.BudgetW*(1+1e-9)+1e-6 {
				violations++
			}
			aggW[r.Period] += r.PowerW
			sumW += r.PowerW
			nW++
		}
		if nW > 0 {
			shardMeans = append(shardMeans, sumW/float64(nW))
		}
	}
	if err := srv.Close(); err != nil {
		return err
	}
	sort.Slice(decideNs, func(i, j int) bool { return decideNs[i] < decideNs[j] })
	quantile := func(q float64) float64 {
		if len(decideNs) == 0 {
			return 0
		}
		idx := int(q * float64(len(decideNs)-1))
		return float64(decideNs[idx]) / 1e6
	}

	sum := experiments.BenchSummary{
		Experiment:    "fleet",
		Scale:         fmt.Sprintf("%d-streams", *streams),
		Point:         fmt.Sprintf("%d-requests-per-stream", len(tr.Requests)),
		WallSeconds:   wall,
		Iterations:    1,
		Streams:       *streams,
		RefsPerSecond: float64(st.RefsIngested) / wall,
		DecideP50Ms:   quantile(0.50),
		DecideP99Ms:   quantile(0.99),
	}
	if *powerCap > 0 {
		maxAgg := 0.0
		for _, w := range aggW {
			if w > maxAgg {
				maxAgg = w
			}
		}
		sum.PowerCapW = *powerCap
		sum.MaxAggregateW = maxAgg
		sum.CapViolations = &violations
		sum.FairnessIndex = fleet.JainIndex(shardMeans)
	}
	path, err := experiments.WriteBenchSummary(*outDir, sum)
	if err != nil {
		return err
	}
	fmt.Printf("streams        %d\n", *streams)
	fmt.Printf("periods closed %d\n", periods)
	fmt.Printf("wall           %.2fs\n", wall)
	fmt.Printf("aggregate      %.0f refs/s\n", sum.RefsPerSecond)
	fmt.Printf("decide p50/p99 %.3fms / %.3fms (%d samples)\n", sum.DecideP50Ms, sum.DecideP99Ms, len(decideNs))
	if *powerCap > 0 {
		fmt.Printf("power cap      %.2f W (peak aggregate %.2f W)\n", sum.PowerCapW, sum.MaxAggregateW)
		fmt.Printf("cap violations %d\n", violations)
		fmt.Printf("fairness       %.4f (Jain, %d shards with trusted periods)\n", sum.FairnessIndex, len(shardMeans))
	}
	fmt.Printf("summary        %s\n", path)
	if *powerCap > 0 && violations > 0 {
		return fmt.Errorf("%d trusted periods exceeded their budget under -power-cap-w %g", violations, *powerCap)
	}
	return nil
}

// diskName is the shard naming scheme shared by the pre-created shards
// and the client preambles.
func diskName(i int) string { return fmt.Sprintf("d%04d", i) }
